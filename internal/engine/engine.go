// Package engine runs vids online: a sharded, concurrent detection
// pipeline wrapping the per-call machinery of internal/ids.
//
// The paper argues vids scales because per-call EFSM pairs are
// independent (Section 7.3): one call's SIP machine, its two RTP
// machines and the δ channels between them never touch another call's
// state. The engine exploits exactly that independence. It owns N
// shard workers, each with its own ids.IDS fact base on its own
// virtual clock, and routes every packet to the shard that owns its
// call: SIP by FNV hash of the Call-ID, RTP and RTCP through a media
// key → Call-ID index maintained from the SDP offers the router sees
// crossing it. Both machines of a call and their δ channels therefore
// always live on one shard, and the hot path takes no cross-shard
// locks.
//
// The only detectors that cannot be shard-local are the cross-call
// windowed ones — the per-destination INVITE flood (Figure 4) and the
// DRDoS response-reflection counter — because a flood deliberately
// spreads over many Call-IDs and would scatter across shards. The
// router runs one shared ids.FloodWatch at its single serialized
// ingestion point and configures every shard with ExternalFloods so
// the shard-local copies stay silent.
package engine

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vids/internal/fastpath"
	"vids/internal/ids"
	"vids/internal/intern"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Policy selects the backpressure behavior when a shard's queue is
// full.
type Policy int

const (
	// Block makes Ingest wait for queue space: lossless, the right
	// policy for trace replay where input pacing is elastic.
	Block Policy = iota
	// DropOldest evicts the oldest queued packet to admit the newest,
	// counting the eviction in the shard's drop counter: the right
	// policy for live capture, where blocking the reader loses packets
	// in the kernel instead — invisibly.
	DropOldest
	// Shed is tiered overload shedding for live capture under attack:
	// when a shard queue fills, media is sacrificed before signaling.
	// An arriving RTP/RTCP packet is dropped on the floor; an arriving
	// SIP packet evicts the oldest queued media packet instead (falling
	// back to the oldest signaling packet only when the whole ring is
	// signaling). A media flood therefore cannot starve the SIP stream
	// the detectors need most — losing an RTP packet costs a little
	// media-plane sensitivity, losing an INVITE or BYE loses call state
	// the monitors never recover.
	Shed
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	case Shed:
		return "shed-media-first"
	default:
		return "policy(?)"
	}
}

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of detection workers. Zero or negative
	// means GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's pending-packet queue. Zero or
	// negative means 1024.
	QueueDepth int
	// Policy selects what Ingest does when a shard queue is full.
	Policy Policy
	// IDS configures each shard's detector instance. The zero value
	// means ids.DefaultConfig(). ExternalFloods is forced on: the
	// engine always runs the one shared FloodWatch itself.
	IDS ids.Config
	// DisableFastpath turns off the per-flow RTP validation cache the
	// ingress tier consults before shard enqueue (the -fastpath=false
	// escape hatch). The zero value keeps it on.
	DisableFastpath bool
	// OnAlert, when set, observes every alert as it is raised. The
	// engine serializes the calls (alerts originate on shard workers
	// and inside Ingest, but never overlap), so an unsynchronized
	// writer is fine. The callback must not call back into the
	// engine's Ingest or Close.
	OnAlert func(ids.Alert)
	// OnRetire, when set, observes every ingested packet exactly once
	// after the engine is finished with it — analyzed by a shard,
	// absorbed at the router, evicted under DropOldest/Shed, counted
	// as a parse error, or ignored as non-VoIP. Live sources use it to
	// return receive buffers to a bufpool free list. It may run on any
	// goroutine, is never invoked under an engine lock, and must not
	// call back into Ingest or Close.
	OnRetire func(*sim.Packet)
}

// ErrClosed is returned by Ingest after Close has begun.
var ErrClosed = errors.New("engine: closed")

// internTableCap bounds the router's string-intern table, sized like
// the shard-side one: enough for the media keys and flood destinations
// of a large live population without growing without bound.
const internTableCap = 4096

// item is one unit of shard work: a packet, its capture timestamp,
// and — for SIP — the parse the router already did to route it. Media
// escalated by the fast-path cache additionally carries its flow's
// in-flight reference, the epoch its arm offer must match, and — for
// the first packet after a stretch of absorption — the resync
// snapshot the worker applies before delivery.
type item struct {
	pkt *sim.Packet
	at  time.Duration
	sip *sipmsg.Message

	fpFlow    *fastpath.Flow
	fpEpoch   uint64
	fpSnap    fastpath.Snapshot
	fpHasSnap bool
}

// shard is one detection worker: a bounded ring of pending items
// feeding a single-goroutine ids.IDS on its own virtual clock.
//
// The router→worker handoff is batched: producers append single items
// to the ring under the shard mutex, but the worker detaches the
// whole backlog in one critical section and analyzes it outside the
// lock, so a busy shard pays one synchronization round-trip per batch
// rather than one channel send/receive per packet. FIFO order is the
// ring order, which is the mutex acquisition order — exactly the
// ordering the old per-item channel gave — so the sequential-parity
// guarantee is untouched.
type shard struct {
	sim  *sim.Simulator
	ids  *ids.IDS
	done chan struct{}

	// parseErrs aliases the engine's parse-error counter: raw SIP
	// handed over by the ingress tier is parsed here on the worker,
	// and a failure is pipeline accounting, not shard accounting.
	parseErrs *atomic.Uint64
	// retire is Config.OnRetire (nil when unset), invoked outside the
	// queue lock for every packet this shard consumes or evicts.
	retire func(*sim.Packet)

	mu      sync.Mutex
	ready   *sync.Cond // work arrived, or closing
	space   *sync.Cond // ring slots freed (Block producers wait here)
	buf     []item     // ring storage, len == QueueDepth
	head    int        // index of the oldest queued item
	n       int        // queued count
	closing bool
	batch   []item // worker-owned detach buffer, reused every pickup

	// fpEpoch is the fast-path epoch of the item the worker is
	// currently processing; the detector's Arm hook closes over it.
	// Written and read only on the worker goroutine.
	fpEpoch uint64

	queued     atomic.Int64 // mirrors n for lock-free Stats
	processed  atomic.Uint64
	dropped    atomic.Uint64
	shedMedia  atomic.Uint64 // Shed evictions that hit media
	shedSignal atomic.Uint64 // Shed evictions that had to hit signaling
	fpHits     atomic.Uint64 // packets the fast path absorbed on this shard's behalf
	alerts     atomic.Uint64
}

// Engine is the online detection pipeline. Create instances with New;
// the zero value is not usable.
type Engine struct {
	cfg    Config
	shards []*shard

	// fp is the per-flow RTP validation cache the ingress tier consults
	// before shard enqueue; nil when Config.DisableFastpath is set.
	fp *fastpath.Cache

	// Router state. The router is the single point that sees the whole
	// packet stream, so the cross-call detectors and the routing
	// indexes live here, under one mutex. Shard work happens outside
	// it.
	mu         sync.Mutex
	clock      *sim.Simulator           // drives FloodWatch windows and index GC
	fw         *ids.FloodWatch          // shared cross-call detectors
	fwAlerts   []ids.Alert              // alerts the router itself raised
	media      map[string]string        // media key -> owning Call-ID
	calls      map[string]time.Duration // Call-ID -> last activity (stray-response test + GC)
	gone       map[string]time.Duration // Call-ID -> when the sweep forgot it (router tombstones)
	keyBuf     []byte                   // reusable media-key scratch, guarded by mu
	strings    *intern.Table            // media keys / flood dests, guarded by mu
	retain     time.Duration            // how long idle routing entries survive
	sweepArmed bool

	ingested    atomic.Uint64
	parseErrors atomic.Uint64
	absorbed    atomic.Uint64 // stray responses consumed by the router
	ignored     atomic.Uint64 // non-VoIP packets
	alertCount  atomic.Uint64

	closed   atomic.Bool
	ingestWG sync.WaitGroup // in-flight Ingest calls, so Close never races a queue send
	start    time.Time

	// cbMu serializes cfg.OnAlert delivery across shard workers and
	// the router. Always acquired after e.mu, never before it.
	//
	//vids:lockorder Engine.mu -> Engine.cbMu
	cbMu sync.Mutex
}

// New creates an engine and starts its shard workers. The caller must
// Close it to drain the queues and release the workers.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.IDS == (ids.Config{}) {
		cfg.IDS = ids.DefaultConfig()
	}
	cfg.IDS.ExternalFloods = true

	e := &Engine{
		cfg:     cfg,
		clock:   sim.New(0),
		media:   make(map[string]string),
		calls:   make(map[string]time.Duration),
		gone:    make(map[string]time.Duration),
		strings: intern.New(internTableCap),
		retain:  cfg.IDS.IdleEviction + cfg.IDS.CloseLinger,
		start:   time.Now(), //vidslint:allow wallclock — uptime display only
	}
	e.fw = ids.NewFloodWatch(e.clock, cfg.IDS, func(a ids.Alert) {
		// Runs under e.mu: FeedInvite/FeedStrayResponse and the router
		// clock's timers only execute inside Ingest or Close.
		e.fwAlerts = append(e.fwAlerts, a)
		e.alertCount.Add(1)
		e.deliver(a)
	})
	if !cfg.DisableFastpath {
		e.fp = fastpath.New(fastpath.Config{
			SeqGap:      cfg.IDS.RTP.SeqGap,
			TSGap:       cfg.IDS.RTP.TSGap,
			RateWindow:  cfg.IDS.RTP.RateWindow,
			RatePackets: cfg.IDS.RTP.RatePackets,
			// One Touch per quarter of the routing-entry lifetime keeps
			// the ingress sweeps fed without per-packet bookkeeping.
			RefreshEvery: e.retain / 4,
		})
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := sim.New(int64(i) + 1)
		sh := &shard{
			sim:       s,
			ids:       ids.New(s, cfg.IDS),
			done:      make(chan struct{}),
			parseErrs: &e.parseErrors,
			retire:    cfg.OnRetire,
			buf:       make([]item, cfg.QueueDepth),
			batch:     make([]item, 0, cfg.QueueDepth),
		}
		sh.ready = sync.NewCond(&sh.mu)
		sh.space = sync.NewCond(&sh.mu)
		sh.ids.OnAlert = func(a ids.Alert) {
			sh.alerts.Add(1)
			e.alertCount.Add(1)
			e.deliver(a)
		}
		if e.fp != nil {
			sh.ids.SetMediaFastpath(ids.MediaFastpath{
				Arm: func(key []byte, payload uint8, snap fastpath.Snapshot) {
					// sh.fpEpoch is the epoch of the packet this worker is
					// processing right now — the Arm hook fires inside
					// Process, on the worker goroutine.
					e.fp.Update(key, sh.fpEpoch, payload, snap)
				},
				Invalidate: e.fp.Invalidate,
				Remove:     e.fp.Remove,
				Activity:   e.fp.LastSeen,
			})
		}
		e.shards[i] = sh
		go sh.run()
	}
	return e
}

// Fastpath exposes the per-flow RTP validation cache to the ingress
// tier; nil when disabled.
func (e *Engine) Fastpath() *fastpath.Cache { return e.fp }

// deliver hands an alert to the user's OnAlert callback, serializing
// across the shard workers and the router so the callback never runs
// concurrently with itself.
func (e *Engine) deliver(a ids.Alert) {
	if e.cfg.OnAlert == nil {
		return
	}
	e.cbMu.Lock()
	defer e.cbMu.Unlock()
	e.cfg.OnAlert(a)
}

// run is the shard worker loop: detach the whole pending backlog in
// one critical section, then — outside the lock — advance the shard
// clock to each packet's capture time (firing due timers first,
// exactly as a sequential replay would) and analyze, in ring order.
// When the shard closes, the worker drains what remains and runs the
// outstanding timers to completion so grace-window alerts (Figure 5
// timer T, the RTCP BYE window) still fire.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		sh.mu.Lock()
		for sh.n == 0 && !sh.closing {
			sh.ready.Wait()
		}
		if sh.n == 0 {
			sh.mu.Unlock()
			break
		}
		batch := sh.batch[:0]
		for sh.n > 0 {
			batch = append(batch, sh.buf[sh.head])
			sh.buf[sh.head] = item{} // drop packet references
			sh.head = (sh.head + 1) % len(sh.buf)
			sh.n--
		}
		sh.queued.Store(0)
		sh.space.Broadcast()
		sh.mu.Unlock()

		for i := range batch {
			it := batch[i]
			_ = sh.sim.RunUntil(it.at)
			switch {
			case it.sip != nil:
				// Router path: the serial router already parsed to route.
				sh.ids.ProcessSIP(it.sip, it.pkt)
				sh.processed.Add(1)
			case it.pkt.Proto == sim.ProtoSIP:
				// Ingress path: the lane routed on a lite extract and the
				// shard owns the full parse, so the serial tier never
				// pays for it.
				if raw, ok := it.pkt.Payload.([]byte); ok {
					if m, err := sipmsg.Parse(raw); err == nil {
						sh.ids.ProcessSIP(m, it.pkt)
						sh.processed.Add(1)
					} else {
						sh.parseErrs.Add(1)
					}
				} else {
					sh.parseErrs.Add(1)
				}
			default:
				if it.fpHasSnap {
					// First packet after a stretch of fast-path
					// absorption: bring the machine's window variables
					// up to date before it judges this packet.
					sh.ids.ResyncMedia(it.pkt.To.Host, it.pkt.To.Port, it.fpSnap)
				}
				sh.fpEpoch = it.fpEpoch
				sh.ids.Process(it.pkt)
				sh.fpEpoch = 0
				sh.processed.Add(1)
			}
			if it.fpFlow != nil {
				it.fpFlow.Release()
			}
			if sh.retire != nil {
				sh.retire(it.pkt)
			}
			batch[i] = item{}
		}
		sh.batch = batch[:0]
	}
	_ = sh.sim.RunAll()
}

// enqueue appends one item to the shard ring, applying the
// backpressure policy when the ring is full: Block waits for the
// worker to detach a batch; DropOldest advances the ring head past
// the oldest queued item, counting the eviction; Shed sacrifices
// media before signaling (see the Policy docs). Items the worker has
// already detached are beyond eviction — the same property the old
// channel had once a packet was received. Victims are retired outside
// the queue lock: the retire hook is user code and must never run
// while producers are parked on the condition variable.
func (sh *shard) enqueue(it item, p Policy) {
	var victim *sim.Packet
	admitted := true
	sh.mu.Lock()
	switch p {
	case Block:
		for sh.n == len(sh.buf) {
			sh.space.Wait()
		}
	case DropOldest:
		for sh.n == len(sh.buf) {
			victim = sh.buf[sh.head].pkt
			if f := sh.buf[sh.head].fpFlow; f != nil {
				f.Release()
			}
			sh.buf[sh.head] = item{}
			sh.head = (sh.head + 1) % len(sh.buf)
			sh.n--
			sh.dropped.Add(1)
			sh.queued.Add(-1)
		}
	case Shed:
		if sh.n == len(sh.buf) {
			if isMedia(it.pkt) {
				// Tier 1: an arriving media packet yields to whatever
				// is already queued.
				admitted = false
				sh.dropped.Add(1)
				sh.shedMedia.Add(1)
				if it.fpFlow != nil {
					it.fpFlow.Release()
				}
			} else {
				victim = sh.evictForSignaling()
			}
		}
	}
	if admitted {
		sh.buf[(sh.head+sh.n)%len(sh.buf)] = it
		sh.n++
		sh.queued.Add(1)
		if sh.n == 1 {
			sh.ready.Signal()
		}
	}
	sh.mu.Unlock()
	if victim != nil && sh.retire != nil {
		sh.retire(victim) //vids:alloc-ok retire hook recycles pooled receive buffers; nil in replay
	}
	if !admitted && sh.retire != nil {
		sh.retire(it.pkt) //vids:alloc-ok retire hook recycles pooled receive buffers; nil in replay
	}
}

// evictForSignaling makes room for an arriving SIP packet under Shed:
// the oldest queued media packet goes first, and only a ring full of
// signaling sacrifices its own oldest entry. Caller holds sh.mu; the
// evicted packet is returned for retirement outside the lock.
func (sh *shard) evictForSignaling() *sim.Packet {
	n := len(sh.buf)
	at := -1
	for j := 0; j < sh.n; j++ {
		if isMedia(sh.buf[(sh.head+j)%n].pkt) {
			at = j
			break
		}
	}
	if at < 0 {
		// Tier 2: all signaling — the oldest entry is the least
		// valuable (its dialog state is most likely already built).
		victim := sh.buf[sh.head].pkt
		sh.buf[sh.head] = item{}
		sh.head = (sh.head + 1) % n
		sh.n--
		sh.dropped.Add(1)
		sh.shedSignal.Add(1)
		sh.queued.Add(-1)
		return victim
	}
	victim := sh.buf[(sh.head+at)%n].pkt
	if f := sh.buf[(sh.head+at)%n].fpFlow; f != nil {
		f.Release()
	}
	// Close the gap toward the tail, preserving FIFO order of the
	// survivors.
	for j := at; j < sh.n-1; j++ {
		sh.buf[(sh.head+j)%n] = sh.buf[(sh.head+j+1)%n]
	}
	sh.buf[(sh.head+sh.n-1)%n] = item{}
	sh.n--
	sh.dropped.Add(1)
	sh.shedMedia.Add(1)
	sh.queued.Add(-1)
	return victim
}

// isMedia reports whether pkt rides the media plane (RTP or RTCP) —
// the shedding tiers' discriminator.
func isMedia(pkt *sim.Packet) bool {
	return pkt.Proto == sim.ProtoRTP || pkt.Proto == sim.ProtoRTCP
}

// shut marks the shard closing and wakes the worker so it drains the
// backlog and exits. Close has already waited out in-flight Ingest
// calls, so no producer can be blocked in enqueue at this point.
func (sh *shard) shut() {
	sh.mu.Lock()
	sh.closing = true
	sh.ready.Signal()
	sh.mu.Unlock()
}

// fnv32a is FNV-1a over the key string, inlined to keep the hot path
// allocation-free.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// fnv32aBytes is fnv32a over a byte slice, so a media key rendered
// into a scratch buffer picks the same shard as its string form.
func fnv32aBytes(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= prime32
	}
	return h
}

func (e *Engine) shardFor(key string) *shard {
	return e.shards[int(fnv32a(key)%uint32(len(e.shards)))]
}

// ShardIndexFor exposes the Call-ID → shard mapping to the ingress
// tier, which routes on a lite extract and must land a call's packets
// on the same worker the router path would pick.
func (e *Engine) ShardIndexFor(callID string) int {
	return int(fnv32a(callID) % uint32(len(e.shards)))
}

// ShardIndexForBytes is ShardIndexFor over a key still sitting in a
// receive buffer, so the per-packet route never materializes a string.
func (e *Engine) ShardIndexForBytes(key []byte) int {
	return int(fnv32aBytes(key) % uint32(len(e.shards)))
}

// EnqueueRaw hands a packet straight to shard idx, bypassing the
// serial router: the ingress tier has already made the routing
// decision and fed the cross-call detectors on its lanes. Raw SIP
// payloads (no parsed message attached) are parsed on the shard
// worker, which is exactly the point — parse and classify scale with
// the shard count instead of serializing at one router goroutine.
// Callers own per-call packet ordering, as with Ingest.
func (e *Engine) EnqueueRaw(idx int, pkt *sim.Packet, at time.Duration) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.ingestWG.Add(1)
	defer e.ingestWG.Done()
	// Same double-check as Ingest: Close sets closed before waiting on
	// the group, so passing this check means the queues are still open.
	if e.closed.Load() {
		return ErrClosed
	}
	e.shards[idx].enqueue(item{pkt: pkt, at: at}, e.cfg.Policy)
	return nil
}

// EnqueueMedia is EnqueueRaw for an RTP packet the fast-path cache
// declined to absorb: the flow's in-flight reference rides to the
// worker (which Releases it after analysis), epoch gates the arm offer
// the worker may make, and snap — when hasSnap — is applied to the
// machine before this packet is delivered. On ErrClosed the flow is
// released here, since no worker will see the item.
func (e *Engine) EnqueueMedia(idx int, pkt *sim.Packet, at time.Duration, f *fastpath.Flow, epoch uint64, snap fastpath.Snapshot, hasSnap bool) error {
	if e.closed.Load() {
		if f != nil {
			f.Release()
		}
		return ErrClosed
	}
	e.ingestWG.Add(1)
	defer e.ingestWG.Done()
	if e.closed.Load() {
		if f != nil {
			f.Release()
		}
		return ErrClosed
	}
	e.shards[idx].enqueue(item{pkt: pkt, at: at, fpFlow: f, fpEpoch: epoch, fpSnap: snap, fpHasSnap: hasSnap}, e.cfg.Policy)
	return nil
}

// NoteFastpathHit accounts one packet the cache absorbed on shard
// idx's behalf. Only the dedicated hit counter is written here; the
// shard's Processed and the pipeline's Ingested fold the hit count in
// at Stats read time, so the absorb path pays one atomic add instead
// of three while the aggregates still see every absorbed packet.
//
//vids:noalloc one atomic add per absorbed packet
func (e *Engine) NoteFastpathHit(idx int) {
	e.shards[idx].fpHits.Add(1)
}

// RecordAlert merges an alert raised outside the engine — an ingress
// lane's FloodWatch — into the router's alert log, the alert counter,
// and the serialized OnAlert stream.
func (e *Engine) RecordAlert(a ids.Alert) {
	e.mu.Lock()
	e.fwAlerts = append(e.fwAlerts, a)
	e.mu.Unlock()
	e.alertCount.Add(1)
	e.deliver(a)
}

// NoteIngested, NoteParseError, NoteAbsorbed and NoteIgnored let the
// ingress tier account for packets it accepts or disposes of before
// they reach a shard, so Stats stays a complete census of the
// pipeline no matter which tier fed it.
func (e *Engine) NoteIngested() { e.ingested.Add(1) }

// NoteParseError counts a datagram that failed the SIP lite extract
// and the full parse fallback.
func (e *Engine) NoteParseError() { e.parseErrors.Add(1) }

// NoteAbsorbed counts a stray response consumed at the ingress tier.
func (e *Engine) NoteAbsorbed() { e.absorbed.Add(1) }

// NoteIgnored counts a non-VoIP packet dropped at the ingress tier.
func (e *Engine) NoteIgnored() { e.ignored.Add(1) }

// Ingest routes one captured packet into the pipeline. at is the
// packet's capture timestamp on the trace clock; callers must deliver
// packets in capture order. Ingest is safe for concurrent use and
// returns ErrClosed once Close has begun. Parse failures are counted,
// not returned: garbage on the wire is an observation, not an ingest
// error.
func (e *Engine) Ingest(pkt *sim.Packet, at time.Duration) error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.ingestWG.Add(1)
	defer e.ingestWG.Done()
	// Re-check after joining the wait group: Close sets closed before
	// waiting, so passing this check guarantees Close has not yet
	// closed the shard queues.
	if e.closed.Load() {
		return ErrClosed
	}
	e.ingested.Add(1)

	switch pkt.Proto {
	case sim.ProtoSIP:
		e.ingestSIP(pkt, at)
	case sim.ProtoRTP:
		e.routeMedia(pkt.To.Host, pkt.To.Port, at).
			enqueue(item{pkt: pkt, at: at}, e.cfg.Policy)
	case sim.ProtoRTCP:
		// RTCP rides the media port + 1 (RFC 3550 convention the
		// shard-side handler assumes too).
		e.routeMedia(pkt.To.Host, pkt.To.Port-1, at).
			enqueue(item{pkt: pkt, at: at}, e.cfg.Policy)
	default:
		// Non-VoIP traffic is outside vids' scope.
		e.ignored.Add(1)
		e.retirePkt(pkt)
	}
	return nil
}

// retirePkt hands a packet the engine has finished with to the
// OnRetire hook. Never called under a lock.
func (e *Engine) retirePkt(pkt *sim.Packet) {
	if e.cfg.OnRetire != nil {
		e.cfg.OnRetire(pkt)
	}
}

// ingestSIP parses, feeds the cross-call detectors, maintains the
// routing indexes, and forwards to the owning shard — or absorbs the
// packet here when it is a stray response the shared FloodWatch owns.
func (e *Engine) ingestSIP(pkt *sim.Packet, at time.Duration) {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		e.parseErrors.Add(1)
		e.retirePkt(pkt)
		return
	}
	m, err := sipmsg.Parse(raw)
	if err != nil {
		e.parseErrors.Add(1)
		e.retirePkt(pkt)
		return
	}

	e.mu.Lock()
	// Fire flood-window timers due before this packet, then feed.
	_ = e.clock.RunUntil(at)
	now := e.clock.Now()

	if m.IsRequest() && m.Method == sipmsg.INVITE {
		if m.To.Tag() == "" {
			// Render user@host into the scratch and intern it, so a
			// popular destination's window feeds stop materializing its
			// AOR string on every INVITE.
			e.keyBuf = append(e.keyBuf[:0], m.RequestURI.User...)
			e.keyBuf = append(e.keyBuf, '@')
			e.keyBuf = append(e.keyBuf, m.RequestURI.Host...)
			e.fw.FeedInvite(e.strings.Bytes(e.keyBuf), pkt.From.Host, now)
		}
		// Any INVITE creates a call monitor on its shard; remember the
		// Call-ID so later responses are recognized as answered, not
		// stray.
		e.noteCall(m.CallID, at)
	}
	_, known := e.calls[m.CallID]
	if known {
		e.calls[m.CallID] = at
	}
	if m.IsResponse() && !known {
		// A response for a call this edge never initiated. The
		// registrar's answer to a REGISTER is the echo of a request
		// that already raised its own alert, and a response for a call
		// the sweep only recently forgot is a straggler of a closed
		// dialog (the sequential path swallows it on a tombstone);
		// everything else counts toward the DRDoS reflection window.
		// Either way the shards never see it — mirroring the sequential
		// path, where such packets die in handleSIP without touching
		// any machine.
		_, evicted := e.gone[m.CallID]
		if !evicted && m.CSeq.Method != sipmsg.REGISTER {
			e.fw.FeedStrayResponse(m, pkt.To.Host, pkt.From.Host, now)
		}
		e.absorbed.Add(1)
		e.mu.Unlock()
		// The alert detail (if any) was rendered inside the feed, so
		// nothing references the payload anymore.
		e.retirePkt(pkt)
		return
	}
	// Mirror ids.indexMedia: the INVITE's SDP names where the callee's
	// stream will land, the 2xx answer's SDP where the caller's will.
	// One validating scan extracts the destination without building the
	// session description, and the key is interned so re-INVITEs and
	// recycled ports reuse the routing entry's string.
	if (m.IsRequest() && m.Method == sipmsg.INVITE) ||
		(m.IsResponse() && m.IsSuccess() && m.CSeq.Method == sipmsg.INVITE) {
		if addr, port, _, ok := sdp.MediaDest(m.Body); ok {
			host := e.strings.Bytes(addr)
			e.keyBuf = ids.AppendMediaKey(e.keyBuf[:0], host, port)
			e.media[e.strings.Bytes(e.keyBuf)] = m.CallID
		}
	}
	e.mu.Unlock()

	e.shardFor(m.CallID).enqueue(item{pkt: pkt, at: at, sip: m}, e.cfg.Policy)
}

// routeMedia resolves a media destination to the shard that owns it,
// refreshing the owning call's activity stamp. Known streams route by
// their Call-ID; a destination no SDP advertised is an unsolicited
// stream, hashed by the media key itself so all its packets still meet
// one shard's spam monitor. The key is rendered into a scratch buffer
// under e.mu, so the per-packet path never allocates it.
func (e *Engine) routeMedia(host string, port int, at time.Duration) *shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.keyBuf = ids.AppendMediaKey(e.keyBuf[:0], host, port)
	callID, ok := e.media[string(e.keyBuf)]
	if ok {
		if _, live := e.calls[callID]; live {
			e.calls[callID] = at
		}
		return e.shardFor(callID)
	}
	return e.shards[int(fnv32aBytes(e.keyBuf)%uint32(len(e.shards)))]
}

// noteCall records Call-ID activity and arms the index GC. Caller
// holds e.mu.
func (e *Engine) noteCall(id string, at time.Duration) {
	e.calls[id] = at
	delete(e.gone, id)
	e.armSweep()
}

// armSweep schedules the routing-index sweep on the router clock,
// mirroring the shard-side idle eviction: entries idle longer than the
// shard would keep their call (IdleEviction + CloseLinger) are
// dropped, so the index cannot grow without bound under call churn.
// Caller holds e.mu.
func (e *Engine) armSweep() {
	if e.sweepArmed || e.retain <= 0 {
		return
	}
	e.sweepArmed = true
	e.clock.Schedule(e.retain/2, func() {
		e.sweepArmed = false
		now := e.clock.Now()
		for id, last := range e.calls {
			if now-last > e.retain {
				delete(e.calls, id)
				// Tombstone the forgotten Call-ID so straggler responses
				// of the closed dialog are still absorbed silently, the
				// way the shard's (and the sequential path's) tombstones
				// swallow them, instead of feeding the reflection window.
				e.gone[id] = now
			}
		}
		for id, at := range e.gone {
			if now-at > e.retain {
				delete(e.gone, id)
			}
		}
		for key, id := range e.media {
			if _, live := e.calls[id]; !live {
				delete(e.media, key)
			}
		}
		if len(e.calls)+len(e.gone) > 0 {
			e.armSweep()
		}
	})
}

// Close drains the pipeline: it waits for in-flight Ingest calls,
// marks every shard closing, waits for the workers to finish the
// backlog and run their remaining timers, and finally drains the
// router clock so open flood windows expire. Close is idempotent;
// after the first call Ingest returns ErrClosed.
func (e *Engine) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		for _, sh := range e.shards {
			<-sh.done
		}
		return nil
	}
	e.ingestWG.Wait()
	for _, sh := range e.shards {
		sh.shut()
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	e.mu.Lock()
	err := e.clock.RunAll()
	e.mu.Unlock()
	return err
}

// Alerts merges every shard's alert log with the router's own into
// one stream ordered by virtual time (ties broken on the alert fields
// so the order is deterministic). Call it after Close; while shards
// are still running it would race their fact bases.
func (e *Engine) Alerts() []ids.Alert {
	var out []ids.Alert
	e.mu.Lock()
	out = append(out, e.fwAlerts...)
	e.mu.Unlock()
	for _, sh := range e.shards {
		out = append(out, sh.ids.Alerts()...)
	}
	SortAlerts(out)
	return out
}

// SortAlerts orders alerts by virtual time, breaking ties on the
// alert fields so equal-time alerts from different shards land in a
// deterministic order.
func SortAlerts(alerts []ids.Alert) {
	sort.Slice(alerts, func(i, j int) bool {
		a, b := alerts[i], alerts[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		if a.CallID != b.CallID {
			return a.CallID < b.CallID
		}
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Detail < b.Detail
	})
}

// ShardStats is one worker's counters.
type ShardStats struct {
	Depth     int    // packets waiting in the queue
	Processed uint64 // packets analyzed
	Dropped   uint64 // packets evicted under DropOldest or Shed
	ShedMedia uint64 // Shed evictions that hit the media plane
	// ShedSignaling counts Shed evictions that had to hit signaling
	// because the whole ring was SIP — the tier the policy defends.
	ShedSignaling uint64
	// FastpathHits counts packets the validation cache absorbed on this
	// shard's behalf (included in Processed).
	FastpathHits uint64
	Alerts       uint64 // alerts this shard raised
}

// Stats is a point-in-time snapshot of the pipeline.
type Stats struct {
	Shards       []ShardStats
	Ingested     uint64 // packets accepted by Ingest/EnqueueRaw (or noted by ingress)
	Processed    uint64 // sum of shard Processed
	Dropped      uint64 // sum of shard Dropped
	DroppedMedia uint64 // Shed evictions that hit media, summed
	// DroppedSignaling is the shed count the operator watches: while
	// it stays zero, overload has cost only media-plane sensitivity.
	DroppedSignaling uint64
	Alerts           uint64 // shard alerts + router/lane (flood) alerts
	ParseErrors      uint64 // SIP payloads that failed to parse (router, lane, or shard)
	Absorbed         uint64 // stray responses consumed by the router or an ingress lane
	Ignored          uint64 // non-VoIP packets

	// Fast-path cache outcomes (all zero when the cache is disabled).
	// Hits are in-profile packets absorbed before shard enqueue (also
	// counted in Processed); Misses took the slow path with no armed
	// entry; Escalations are armed-entry predicate failures; and
	// Invalidations count armed entries flipped by signaling, RTCP, or
	// monitor eviction.
	FastpathHits          uint64
	FastpathMisses        uint64
	FastpathEscalations   uint64
	FastpathInvalidations uint64

	Elapsed       time.Duration // wall time since New
	PacketsPerSec float64       // Processed / Elapsed
}

// Stats snapshots the pipeline counters. It reads only atomics, so it
// is safe to call at any time from any goroutine — including from an
// OnAlert callback.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:      make([]ShardStats, len(e.shards)),
		Ingested:    e.ingested.Load(),
		Alerts:      e.alertCount.Load(),
		ParseErrors: e.parseErrors.Load(),
		Absorbed:    e.absorbed.Load(),
		Ignored:     e.ignored.Load(),
		Elapsed:     time.Since(e.start),
	}
	if e.fp != nil {
		fs := e.fp.Counters()
		st.FastpathHits = fs.Hits
		st.FastpathMisses = fs.Misses
		st.FastpathEscalations = fs.Escalations
		st.FastpathInvalidations = fs.Invalidations
	}
	for i, sh := range e.shards {
		// Absorbed packets are accounted once, in fpHits; the shard's
		// Processed and the pipeline's Ingested include them by
		// derivation here, not by per-hit atomics on the absorb path.
		hits := sh.fpHits.Load()
		s := ShardStats{
			Depth:         int(sh.queued.Load()),
			Processed:     sh.processed.Load() + hits,
			Dropped:       sh.dropped.Load(),
			ShedMedia:     sh.shedMedia.Load(),
			ShedSignaling: sh.shedSignal.Load(),
			FastpathHits:  hits,
			Alerts:        sh.alerts.Load(),
		}
		st.Shards[i] = s
		st.Ingested += hits
		st.Processed += s.Processed
		st.Dropped += s.Dropped
		st.DroppedMedia += s.ShedMedia
		st.DroppedSignaling += s.ShedSignaling
	}
	if secs := st.Elapsed.Seconds(); secs > 0 {
		st.PacketsPerSec = float64(st.Processed) / secs
	}
	return st
}

// Shards reports the worker count.
func (e *Engine) Shards() int { return len(e.shards) }

// Tap adapts the engine to the simulator's passive-tap signature, so
// an in-sim monitoring point can feed the online pipeline directly.
func (e *Engine) Tap() func(pkt *sim.Packet, at time.Duration) {
	return func(pkt *sim.Packet, at time.Duration) {
		_ = e.Ingest(pkt, at)
	}
}
