package engine

import (
	"context"
	"fmt"
	"net"
	"os"
	"time"

	"vids/internal/bufpool"
	"vids/internal/sim"
	"vids/internal/trace"
)

// Sink is the packet-ingestion side of a detection pipeline: the
// engine itself, or the ingress tier standing in front of it. Ingest
// must be safe for concurrent use and returns ErrClosed once the
// pipeline is shutting down; on error the caller keeps ownership of
// the packet's payload buffer.
type Sink interface {
	Ingest(pkt *sim.Packet, at time.Duration) error
}

// Source feeds packets into a pipeline. Run returns when the input is
// exhausted or ctx is canceled; it must have returned before the
// pipeline is Closed (Ingest on a closed pipeline reports ErrClosed).
type Source interface {
	Run(ctx context.Context, dst Sink) error
}

// TraceSource replays a captured trace file. With Pace 0 the entries
// are pushed as fast as the engine accepts them (offline analysis);
// with Pace p > 0 the capture's inter-packet gaps are reproduced at p
// times real speed, so p = 1 replays the trace on its original
// timeline — the mode for rehearsing live operation.
type TraceSource struct {
	Path    string
	Entries []trace.Entry // used instead of Path when non-nil
	Pace    float64
}

// Run implements Source.
func (ts *TraceSource) Run(ctx context.Context, dst Sink) error {
	entries := ts.Entries
	if entries == nil {
		f, err := os.Open(ts.Path)
		if err != nil {
			return fmt.Errorf("engine: open trace: %w", err)
		}
		entries, err = trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	var prev time.Duration
	for i, en := range entries {
		at := en.At()
		if ts.Pace > 0 && at > prev {
			gap := time.Duration(float64(at-prev) / ts.Pace)
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				return ctx.Err()
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		prev = at
		if err := dst.Ingest(en.Packet(), at); err != nil {
			return fmt.Errorf("engine: entry %d: %w", i, err)
		}
	}
	return nil
}

// UDPSource ingests live traffic from real sockets: one for SIP, one
// for media. RTCP is demultiplexed off the media socket by its
// packet-type octet (200–204), the standard rtcp-mux discriminator.
//
// This is the daemon's lab-grade live path: traffic must be addressed
// *at* the listener (point sipp, a softphone or a packet replayer at
// it), so the destination vids records is the listener's own address.
// A production deployment would instead feed the engine from a
// capture interface; the engine does not care where packets come
// from, only that Ingest sees them in arrival order.
type UDPSource struct {
	SIPAddr string // e.g. ":5060"
	RTPAddr string // e.g. ":20000"
	// AdvertiseHost is the host name recorded as the destination of
	// ingested packets. It should match the address SDP bodies
	// advertise so media routing finds the call. Defaults to the
	// listener's IP.
	AdvertiseHost string
	// Buffers is the receive-buffer free list. Each datagram is read
	// into a pooled buffer and handed to the sink still in that
	// buffer; configure the pipeline's OnRetire hook to Put buffers
	// back so the steady-state read loop allocates nothing. Nil means
	// a private pool (correct, but nothing recycles it unless the
	// retire hook is wired to it).
	Buffers *bufpool.Pool
}

// Run implements Source: it binds both sockets and pumps packets into
// the sink until ctx is canceled. Packet timestamps are wall-clock
// time since the first bind, which keeps the shard clocks on the
// arrival timeline just as a trace replay would.
func (us *UDPSource) Run(ctx context.Context, dst Sink) error {
	sipConn, err := net.ListenPacket("udp", us.SIPAddr)
	if err != nil {
		return fmt.Errorf("engine: bind SIP: %w", err)
	}
	defer sipConn.Close()
	rtpConn, err := net.ListenPacket("udp", us.RTPAddr)
	if err != nil {
		return fmt.Errorf("engine: bind RTP: %w", err)
	}
	defer rtpConn.Close()

	start := time.Now() //vidslint:allow wallclock — live capture epoch for trace timestamps
	errc := make(chan error, 2)
	go func() { errc <- us.pump(ctx, dst, sipConn, start, false) }()
	go func() { errc <- us.pump(ctx, dst, rtpConn, start, true) }()

	select {
	case err = <-errc:
	case <-ctx.Done():
		err = nil
	}
	// Unblock the readers and wait them out.
	sipConn.Close()
	rtpConn.Close()
	<-errc
	return err
}

// pump reads one socket until ctx cancellation or a read error. Each
// datagram lands in a pooled buffer that travels with the packet
// through the pipeline (the retire hook recycles it), and the packet
// is stamped at receive time — before classification and routing — so
// queueing inside the pipeline never skews the arrival timeline the
// detectors reason about.
func (us *UDPSource) pump(ctx context.Context, dst Sink, conn net.PacketConn, start time.Time, media bool) error {
	local, _ := conn.LocalAddr().(*net.UDPAddr)
	toHost := us.AdvertiseHost
	if toHost == "" && local != nil {
		toHost = local.IP.String()
	}
	toPort := 0
	if local != nil {
		toPort = local.Port
	}
	pool := us.Buffers
	if pool == nil {
		pool = bufpool.New(0)
	}
	for {
		buf := pool.Get()
		//vidslint:allow wallclock — OS socket deadline, not detection time
		_ = conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			pool.Put(buf)
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if ctx.Err() != nil {
					return nil
				}
				continue
			}
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("engine: read: %w", err)
		}
		at := time.Since(start) // receive time, not enqueue time
		payload := buf[:n]
		proto := sim.ProtoSIP
		if media {
			proto = sim.ProtoRTP
			if isRTCP(payload) {
				proto = sim.ProtoRTCP
			}
		}
		fromAddr := sim.Addr{}
		if ua, ok := from.(*net.UDPAddr); ok {
			fromAddr = sim.Addr{Host: ua.IP.String(), Port: ua.Port}
		}
		pkt := &sim.Packet{
			From:    fromAddr,
			To:      sim.Addr{Host: toHost, Port: toPort},
			Proto:   proto,
			Size:    n,
			Payload: payload,
		}
		if err := dst.Ingest(pkt, at); err != nil {
			pool.Put(buf)
			return err
		}
	}
}

// isRTCP distinguishes RTCP from RTP sharing a socket: RTP payload
// types stay below 128, while RTCP packet types occupy 200–204
// (RFC 5761 §4).
func isRTCP(data []byte) bool {
	return len(data) >= 2 && data[0]>>6 == 2 && data[1] >= 200 && data[1] <= 204
}
