package media

import (
	"time"
)

// This file estimates perceived voice quality with a simplified
// ITU-T G.107 E-model, quantifying the paper's claim that vids has a
// "low runtime impact on the perceived quality of voice streams".
//
// R = R0 - Id(delay) - Ie,eff(codec, loss), mapped to a MOS score.
// Constants follow the usual planning values for G.729: an intrinsic
// equipment impairment Ie = 11 and packet-loss robustness Bpl = 19.

const (
	// r0 is the base transmission rating with default G.107 values.
	r0 = 93.2
	// g729Ie is the codec's intrinsic equipment impairment.
	g729Ie = 11.0
	// g729Bpl is the codec's packet-loss robustness factor.
	g729Bpl = 19.0
)

// RFactor computes the E-model transmission rating for a one-way
// mouth-to-ear delay and a packet loss rate in [0, 1].
func RFactor(delay time.Duration, lossRate float64) float64 {
	dMs := float64(delay) / float64(time.Millisecond)
	if dMs < 0 {
		dMs = 0
	}
	if lossRate < 0 {
		lossRate = 0
	}
	if lossRate > 1 {
		lossRate = 1
	}

	// Delay impairment Id (G.107 simplified form): small linear term
	// plus the well-known 177.3 ms knee.
	id := 0.024 * dMs
	if dMs > 177.3 {
		id += 0.11 * (dMs - 177.3)
	}

	// Effective equipment impairment with random loss.
	lossPct := lossRate * 100
	ie := g729Ie + (95-g729Ie)*lossPct/(lossPct+g729Bpl)

	return r0 - id - ie
}

// MOSFromR maps an R factor to a mean opinion score using the
// standard G.107 conversion.
func MOSFromR(r float64) float64 {
	switch {
	case r <= 0:
		return 1
	case r >= 100:
		return 4.5
	}
	m := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	if m < 1 {
		// The cubic dips below 1 for R < 6.5; the MOS scale bottoms
		// out at 1, and clamping also keeps the mapping monotone.
		return 1
	}
	return m
}

// MOS is the convenience composition of RFactor and MOSFromR.
func MOS(delay time.Duration, lossRate float64) float64 {
	return MOSFromR(RFactor(delay, lossRate))
}

// LossRate estimates the receiver's packet loss ratio from the
// sequence-number span versus packets received. It is meaningful once
// a stream has delivered at least two packets and assumes the span
// did not exceed one 16-bit wrap.
func (r *Receiver) LossRate() float64 {
	if r.received < 2 || !r.haveSeq {
		return 0
	}
	span := uint64(r.lastSeq-r.firstSeq) + 1
	if span < r.received {
		// Duplicates inflated the count; treat as loss-free.
		return 0
	}
	return float64(span-r.received) / float64(span)
}

// MOS reports the stream's estimated mean opinion score from its
// measured mean delay and loss rate.
func (r *Receiver) MOS() float64 {
	return MOS(time.Duration(r.Delay.Mean()*float64(time.Second)), r.LossRate())
}
