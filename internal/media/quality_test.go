package media

import (
	"testing"
	"testing/quick"
	"time"

	"vids/internal/sim"
)

func TestRFactorCleanCall(t *testing.T) {
	// 50 ms delay, no loss: G.729 plans out around R ~ 81, MOS ~ 4.0.
	r := RFactor(50*time.Millisecond, 0)
	if r < 78 || r > 84 {
		t.Fatalf("R = %.1f, want ~81 for clean G.729", r)
	}
	mos := MOSFromR(r)
	if mos < 3.8 || mos > 4.3 {
		t.Fatalf("MOS = %.2f", mos)
	}
}

func TestRFactorDelayKnee(t *testing.T) {
	// Crossing 177.3 ms costs extra (the E-model knee).
	below := RFactor(150*time.Millisecond, 0)
	above := RFactor(300*time.Millisecond, 0)
	if above >= below {
		t.Fatalf("R(300ms)=%.1f >= R(150ms)=%.1f", above, below)
	}
	slopeBelow := RFactor(100*time.Millisecond, 0) - RFactor(150*time.Millisecond, 0)
	slopeAbove := RFactor(250*time.Millisecond, 0) - RFactor(300*time.Millisecond, 0)
	if slopeAbove <= slopeBelow {
		t.Fatalf("no knee: slopes %.2f then %.2f per 50ms", slopeBelow, slopeAbove)
	}
}

func TestRFactorLossDegrades(t *testing.T) {
	clean := RFactor(50*time.Millisecond, 0)
	lossy := RFactor(50*time.Millisecond, 0.05)
	if lossy >= clean-5 {
		t.Fatalf("5%% loss barely degraded R: %.1f vs %.1f", lossy, clean)
	}
}

func TestMOSBounds(t *testing.T) {
	if m := MOSFromR(-10); m != 1 {
		t.Fatalf("MOS(R<0) = %v", m)
	}
	if m := MOSFromR(150); m != 4.5 {
		t.Fatalf("MOS(R>100) = %v", m)
	}
	// The raw G.107 cubic evaluates below 1 for R in (0, 6.5); the
	// conversion must clamp to the scale floor. 232 ms + 69% loss puts
	// R ~ 4.8, squarely in the dip.
	if m := MOS(232*time.Millisecond, 0.69); m != 1 {
		t.Fatalf("MOS in the low-R dip = %v, want the floor 1", m)
	}
}

// Property: MOS is monotone non-increasing in both delay and loss,
// and always within [1, 4.5].
func TestMOSMonotoneProperty(t *testing.T) {
	prop := func(dMs uint16, lossPct uint8) bool {
		d := time.Duration(dMs) * time.Millisecond
		loss := float64(lossPct%100) / 100
		m := MOS(d, loss)
		if m < 1 || m > 4.5 {
			return false
		}
		// More delay or loss never improves the score.
		return MOS(d+50*time.Millisecond, loss) <= m+1e-9 &&
			MOS(d, loss+0.01) <= m+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverLossRateAndMOS(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: 5 * time.Millisecond, LossProb: 0.1})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 1,
	})
	sender.Start()
	s.Schedule(20*time.Second, func() { sender.Stop() })
	if err := s.Run(21 * time.Second); err != nil {
		t.Fatal(err)
	}
	loss := recv.LossRate()
	if loss < 0.05 || loss > 0.16 {
		t.Fatalf("loss rate = %.3f on a 10%% lossy link", loss)
	}
	mos := recv.MOS()
	if mos < 1 || mos > 4.5 {
		t.Fatalf("MOS = %.2f", mos)
	}
	// 10% loss must hurt compared to a pristine stream.
	if clean := MOS(5*time.Millisecond, 0); mos >= clean {
		t.Fatalf("lossy MOS %.2f >= clean MOS %.2f", mos, clean)
	}
}

func TestReceiverLossRateCleanStream(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: time.Millisecond})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 1,
	})
	sender.Start()
	s.Schedule(time.Second, func() { sender.Stop() })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if loss := recv.LossRate(); loss != 0 {
		t.Fatalf("loss rate = %v on loss-free link", loss)
	}
}

func TestLossRateEmptyReceiver(t *testing.T) {
	r := &Receiver{}
	if r.LossRate() != 0 {
		t.Fatal("empty receiver loss rate non-zero")
	}
}
