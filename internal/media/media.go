// Package media streams RTP voice over the simulated network and
// measures the QoS metrics the paper reports in Figure 10: end-to-end
// packet delay and average delay variation (jitter).
//
// The codec is the paper's G.729 model (Section 7.1): 10 ms frames at
// 8 kbit/s. With the conventional two frames per packet that is a
// 20-byte payload every 20 ms, 8000 Hz RTP clock, 160 timestamp units
// per packet.
package media

import (
	"fmt"
	"time"

	"vids/internal/metrics"
	"vids/internal/rtp"
	"vids/internal/sim"
)

// G.729 codec model constants.
const (
	G729PayloadType   = 18
	G729FrameDuration = 10 * time.Millisecond
	G729FrameBytes    = 10 // 8 kbit/s * 10 ms
	FramesPerPacket   = 2
	PacketInterval    = FramesPerPacket * G729FrameDuration
	PayloadBytes      = FramesPerPacket * G729FrameBytes
	ClockRate         = 8000
	TimestampStep     = uint32(ClockRate * int64(PacketInterval) / int64(time.Second))

	udpIPOverhead = 28
)

// StreamConfig describes one direction of a media session.
type StreamConfig struct {
	From sim.Addr
	To   sim.Addr
	SSRC uint32

	// RTCP enables RFC 3550 control traffic on port+1: a sender
	// report every RTCPInterval and a BYE when the stream stops.
	RTCP         bool
	RTCPInterval time.Duration // default 5s

	// Overrides; zero values select the G.729 defaults.
	PayloadType   uint8
	Interval      time.Duration
	PayloadBytes  int
	TimestampStep uint32
	StartSeq      uint16
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.PayloadType == 0 {
		c.PayloadType = G729PayloadType
	}
	if c.Interval == 0 {
		c.Interval = PacketInterval
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = PayloadBytes
	}
	if c.TimestampStep == 0 {
		c.TimestampStep = TimestampStep
	}
	if c.RTCPInterval == 0 {
		c.RTCPInterval = 5 * time.Second
	}
	return c
}

// rtcpAddr is the conventional RTCP port pairing (RTP port + 1).
func rtcpAddr(a sim.Addr) sim.Addr { return sim.Addr{Host: a.Host, Port: a.Port + 1} }

// Sender clocks RTP packets onto the network until stopped.
type Sender struct {
	sim *sim.Simulator
	net *sim.Network
	cfg StreamConfig

	seq     uint16
	ts      uint32
	sent    uint64
	running bool
	payload []byte
}

// NewSender creates a sender; call Start to begin streaming.
func NewSender(s *sim.Simulator, n *sim.Network, cfg StreamConfig) *Sender {
	cfg = cfg.withDefaults()
	return &Sender{
		sim:     s,
		net:     n,
		cfg:     cfg,
		seq:     cfg.StartSeq,
		payload: make([]byte, cfg.PayloadBytes),
	}
}

// Start begins clocking packets at the configured interval. The first
// packet goes out immediately.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	s.emit()
	if s.cfg.RTCP {
		s.emitRTCP()
	}
}

// Stop halts the stream after the current packet and, with RTCP
// enabled, announces the departure with an RTCP BYE.
func (s *Sender) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.cfg.RTCP {
		s.sendRTCP(&rtp.RTCP{Type: rtp.RTCPBye, SSRC: s.cfg.SSRC})
	}
}

// emitRTCP clocks periodic sender reports.
func (s *Sender) emitRTCP() {
	if !s.running {
		return
	}
	s.sendRTCP(&rtp.RTCP{
		Type:        rtp.RTCPSenderReport,
		SSRC:        s.cfg.SSRC,
		RTPTime:     s.ts,
		PacketCount: uint32(s.sent),
		OctetCount:  uint32(s.sent) * uint32(s.cfg.PayloadBytes),
	})
	s.sim.Schedule(s.cfg.RTCPInterval, func() { s.emitRTCP() })
}

func (s *Sender) sendRTCP(p *rtp.RTCP) {
	raw, err := p.Marshal()
	if err != nil {
		return
	}
	_ = s.net.Send(&sim.Packet{
		From:    rtcpAddr(s.cfg.From),
		To:      rtcpAddr(s.cfg.To),
		Proto:   sim.ProtoRTCP,
		Size:    len(raw) + udpIPOverhead,
		Payload: raw,
	})
}

// Sent reports packets emitted so far.
func (s *Sender) Sent() uint64 { return s.sent }

// Running reports whether the sender is clocking packets.
func (s *Sender) Running() bool { return s.running }

func (s *Sender) emit() {
	if !s.running {
		return
	}
	pkt := &rtp.Packet{
		PayloadType: s.cfg.PayloadType,
		Marker:      s.sent == 0,
		Sequence:    s.seq,
		Timestamp:   s.ts,
		SSRC:        s.cfg.SSRC,
		Payload:     s.payload,
	}
	raw, err := pkt.Marshal()
	if err == nil {
		_ = s.net.Send(&sim.Packet{
			From:    s.cfg.From,
			To:      s.cfg.To,
			Proto:   sim.ProtoRTP,
			Size:    len(raw) + udpIPOverhead,
			Payload: raw,
		})
	}
	s.seq++
	s.ts += s.cfg.TimestampStep
	s.sent++
	s.sim.Schedule(s.cfg.Interval, func() { s.emit() })
}

// Receiver consumes an RTP stream and accumulates QoS statistics.
type Receiver struct {
	sim *sim.Simulator

	received   uint64
	outOfOrder uint64
	badPackets uint64

	// Delay is end-to-end one-way delay per packet; DelaySeries keeps
	// the raw timeline for Figure 10-style plots.
	Delay       metrics.Summary
	DelaySeries metrics.Series

	// Jitter is the RFC 3550 §6.4.1 interarrival jitter estimate,
	// sampled after every packet.
	Jitter       float64
	JitterSeries metrics.Series

	havePrev    bool
	prevSent    time.Duration
	prevArrive  time.Duration
	firstSeq    uint16
	lastSeq     uint16
	haveSeq     bool
	rtcpReports uint64
	rtcpByes    uint64
}

// NewReceiver binds a receiver on host:port plus the paired RTCP
// port.
func NewReceiver(s *sim.Simulator, n *sim.Network, at sim.Addr) (*Receiver, error) {
	r := &Receiver{sim: s}
	if err := n.Bind(at.Host, at.Port, r.consume); err != nil {
		return nil, fmt.Errorf("media: bind %v: %w", at, err)
	}
	if err := n.Bind(at.Host, at.Port+1, r.consumeRTCP); err != nil {
		return nil, fmt.Errorf("media: bind RTCP %v: %w", rtcpAddr(at), err)
	}
	return r, nil
}

// consumeRTCP tracks control traffic: sender reports and stream BYEs.
func (r *Receiver) consumeRTCP(pkt *sim.Packet) {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		r.badPackets++
		return
	}
	p, err := rtp.ParseRTCP(raw)
	if err != nil {
		r.badPackets++
		return
	}
	switch p.Type {
	case rtp.RTCPSenderReport, rtp.RTCPReceiverReport:
		r.rtcpReports++
	case rtp.RTCPBye:
		r.rtcpByes++
	}
}

// RTCPReports reports received sender/receiver reports.
func (r *Receiver) RTCPReports() uint64 { return r.rtcpReports }

// RTCPByes reports received RTCP BYEs.
func (r *Receiver) RTCPByes() uint64 { return r.rtcpByes }

func (r *Receiver) consume(pkt *sim.Packet) {
	raw, ok := pkt.Payload.([]byte)
	if !ok {
		r.badPackets++
		return
	}
	p, err := rtp.Parse(raw)
	if err != nil {
		r.badPackets++
		return
	}
	now := r.sim.Now()
	r.received++

	delay := now - pkt.SentAt
	r.Delay.AddDuration(delay)
	r.DelaySeries.Append(now, delay.Seconds())

	if !r.haveSeq {
		r.firstSeq = p.Sequence
	} else if !rtp.SeqLess(r.lastSeq, p.Sequence) {
		r.outOfOrder++
	}
	if !r.haveSeq || rtp.SeqLess(r.lastSeq, p.Sequence) {
		r.lastSeq = p.Sequence
	}
	r.haveSeq = true

	if r.havePrev {
		// D(i-1, i) = (R_i - R_{i-1}) - (S_i - S_{i-1})
		d := (now - r.prevArrive) - (pkt.SentAt - r.prevSent)
		if d < 0 {
			d = -d
		}
		r.Jitter += (d.Seconds() - r.Jitter) / 16
		r.JitterSeries.Append(now, r.Jitter)
	}
	r.prevSent = pkt.SentAt
	r.prevArrive = now
	r.havePrev = true
}

// Received reports packets successfully consumed.
func (r *Receiver) Received() uint64 { return r.received }

// OutOfOrder reports packets that arrived behind their predecessor.
func (r *Receiver) OutOfOrder() uint64 { return r.outOfOrder }

// Bad reports undecodable datagrams.
func (r *Receiver) Bad() uint64 { return r.badPackets }

// Session is one bidirectional voice call: a sender and receiver on
// each side.
type Session struct {
	AtoB  *Sender
	BtoA  *Sender
	RecvA *Receiver
	RecvB *Receiver
}

// NewSession wires both directions of a call: a sends from aAddr to
// bAddr and vice versa. The receivers bind the respective local ports.
func NewSession(s *sim.Simulator, n *sim.Network, aAddr, bAddr sim.Addr, ssrcA, ssrcB uint32) (*Session, error) {
	recvA, err := NewReceiver(s, n, aAddr)
	if err != nil {
		return nil, err
	}
	recvB, err := NewReceiver(s, n, bAddr)
	if err != nil {
		return nil, err
	}
	return &Session{
		AtoB:  NewSender(s, n, StreamConfig{From: aAddr, To: bAddr, SSRC: ssrcA}),
		BtoA:  NewSender(s, n, StreamConfig{From: bAddr, To: aAddr, SSRC: ssrcB}),
		RecvA: recvA,
		RecvB: recvB,
	}, nil
}

// Start begins streaming in both directions.
func (s *Session) Start() {
	s.AtoB.Start()
	s.BtoA.Start()
}

// Stop halts both directions.
func (s *Session) Stop() {
	s.AtoB.Stop()
	s.BtoA.Stop()
}
