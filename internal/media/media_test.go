package media

import (
	"testing"
	"time"

	"vids/internal/sim"
)

func newPair(t *testing.T, cfg sim.LinkConfig) (*sim.Simulator, *sim.Network) {
	t.Helper()
	s := sim.New(5)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("a", "b", cfg); err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestG729Constants(t *testing.T) {
	if PacketInterval != 20*time.Millisecond {
		t.Fatalf("packet interval = %v", PacketInterval)
	}
	if PayloadBytes != 20 {
		t.Fatalf("payload bytes = %d", PayloadBytes)
	}
	if TimestampStep != 160 {
		t.Fatalf("timestamp step = %d", TimestampStep)
	}
}

func TestStreamDeliversAtCodecRate(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: 5 * time.Millisecond})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 0xABCD,
	})
	sender.Start()
	s.Schedule(time.Second, func() { sender.Stop() })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 1 s at 20 ms per packet = 50 packets (first at t=0).
	if got := recv.Received(); got < 49 || got > 51 {
		t.Fatalf("received %d packets, want ~50", got)
	}
	if sender.Sent() != recv.Received() {
		t.Fatalf("sent %d != received %d on loss-free link", sender.Sent(), recv.Received())
	}
	// Constant-delay link: measured delay must equal the propagation
	// delay and jitter must stay ~0.
	if d := recv.Delay.Mean(); d < 0.0049 || d > 0.0051 {
		t.Fatalf("mean delay = %v s, want 5ms", d)
	}
	if recv.Jitter > 1e-6 {
		t.Fatalf("jitter = %v on constant-delay link", recv.Jitter)
	}
	if recv.OutOfOrder() != 0 {
		t.Fatalf("out-of-order = %d", recv.OutOfOrder())
	}
}

func TestJitterReflectsLinkJitter(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: 5 * time.Millisecond, Jitter: 4 * time.Millisecond})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 1,
	})
	sender.Start()
	s.Schedule(10*time.Second, func() { sender.Stop() })
	if err := s.Run(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	if recv.Jitter < 1e-4 {
		t.Fatalf("jitter = %v, expected visible jitter on a jittery link", recv.Jitter)
	}
	if recv.JitterSeries.Len() == 0 || recv.DelaySeries.Len() == 0 {
		t.Fatal("series not populated")
	}
}

func TestSenderSequenceAndTimestampProgress(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{})
	var seqs []uint16
	var stamps []uint32
	if err := n.Bind("b", 4000, func(pkt *sim.Packet) {
		raw, _ := pkt.Payload.([]byte)
		// Cheap parse: bytes 2-3 seq, 4-7 timestamp.
		seqs = append(seqs, uint16(raw[2])<<8|uint16(raw[3]))
		stamps = append(stamps, uint32(raw[4])<<24|uint32(raw[5])<<16|uint32(raw[6])<<8|uint32(raw[7]))
	}); err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 1, StartSeq: 100,
	})
	sender.Start()
	s.Schedule(100*time.Millisecond, func() { sender.Stop() })
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 5 {
		t.Fatalf("only %d packets", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("sequence gap: %v", seqs)
		}
		if stamps[i] != stamps[i-1]+TimestampStep {
			t.Fatalf("timestamp gap: %v", stamps)
		}
	}
	if seqs[0] != 100 {
		t.Fatalf("start seq = %d", seqs[0])
	}
}

func TestSessionBidirectional(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: time.Millisecond})
	sess, err := NewSession(s, n,
		sim.Addr{Host: "a", Port: 4000},
		sim.Addr{Host: "b", Port: 4002},
		111, 222)
	if err != nil {
		t.Fatal(err)
	}
	sess.Start()
	s.Schedule(time.Second, func() { sess.Stop() })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sess.RecvA.Received() < 45 || sess.RecvB.Received() < 45 {
		t.Fatalf("received A=%d B=%d", sess.RecvA.Received(), sess.RecvB.Received())
	}
}

func TestReceiverCountsBadPackets(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&sim.Packet{
		From: sim.Addr{Host: "a", Port: 4000}, To: sim.Addr{Host: "b", Port: 4000},
		Size: 10, Payload: []byte{1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&sim.Packet{
		From: sim.Addr{Host: "a", Port: 4000}, To: sim.Addr{Host: "b", Port: 4000},
		Size: 10, Payload: "not bytes",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if recv.Bad() != 2 {
		t.Fatalf("bad = %d, want 2", recv.Bad())
	}
	if recv.Received() != 0 {
		t.Fatalf("received = %d, want 0", recv.Received())
	}
}

func TestStartIsIdempotent(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 1,
	})
	sender.Start()
	sender.Start() // must not double-clock
	s.Schedule(100*time.Millisecond, func() { sender.Stop() })
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	// 100ms / 20ms = 5 intervals -> 6 packets max (t=0..100 inclusive).
	if recv.Received() > 6 {
		t.Fatalf("received %d packets: double start", recv.Received())
	}
	if sender.Running() {
		t.Fatal("sender still running after Stop")
	}
}

func TestReceiverBindError(t *testing.T) {
	s := sim.New(1)
	n := sim.NewNetwork(s)
	if _, err := NewReceiver(s, n, sim.Addr{Host: "ghost", Port: 1}); err == nil {
		t.Fatal("bind on unknown host accepted")
	}
}

func TestSenderEmitsRTCPReportsAndBye(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{PropDelay: time.Millisecond})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 9, RTCP: true,
	})
	sender.Start()
	s.Schedule(12*time.Second, func() { sender.Stop() })
	if err := s.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	// 12s at one SR per 5s: reports at t=0, 5, 10.
	if got := recv.RTCPReports(); got != 3 {
		t.Fatalf("RTCP reports = %d, want 3", got)
	}
	if got := recv.RTCPByes(); got != 1 {
		t.Fatalf("RTCP byes = %d, want 1", got)
	}
	// Stopping twice must not emit a second BYE.
	sender.Stop()
	if err := s.Run(16 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := recv.RTCPByes(); got != 1 {
		t.Fatalf("double stop duplicated BYE: %d", got)
	}
}

func TestRTCPDisabledByDefault(t *testing.T) {
	s, n := newPair(t, sim.LinkConfig{})
	recv, err := NewReceiver(s, n, sim.Addr{Host: "b", Port: 4000})
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(s, n, StreamConfig{
		From: sim.Addr{Host: "a", Port: 4000},
		To:   sim.Addr{Host: "b", Port: 4000},
		SSRC: 9,
	})
	sender.Start()
	s.Schedule(time.Second, func() { sender.Stop() })
	if err := s.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if recv.RTCPReports() != 0 || recv.RTCPByes() != 0 {
		t.Fatal("RTCP traffic with RTCP disabled")
	}
}
