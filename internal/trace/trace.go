// Package trace captures and replays packet traces. A trace is a
// JSON-lines file, one entry per packet with its virtual capture
// time, addressing, protocol label and raw payload — the offline
// equivalent of the packet stream the vids monitoring point sees.
// Traces make the IDS usable standalone: capture on one run (or
// export from another tool), replay into a fresh vids instance later.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vids/internal/sim"
)

// Entry is one captured packet.
type Entry struct {
	// AtNanos is the virtual capture time in nanoseconds.
	AtNanos int64 `json:"atNanos"`
	// Proto is the protocol label ("SIP", "RTP", "RTCP", "OTHER").
	Proto string `json:"proto"`

	FromHost string `json:"fromHost"`
	FromPort int    `json:"fromPort"`
	ToHost   string `json:"toHost"`
	ToPort   int    `json:"toPort"`

	Size int `json:"size"`
	// Data is the raw payload (base64 in the JSON encoding).
	Data []byte `json:"data"`
}

// At returns the capture time as a duration since the trace epoch.
func (e Entry) At() time.Duration { return time.Duration(e.AtNanos) }

// Packet reconstructs the simulated packet.
func (e Entry) Packet() *sim.Packet {
	return &sim.Packet{
		From:    sim.Addr{Host: e.FromHost, Port: e.FromPort},
		To:      sim.Addr{Host: e.ToHost, Port: e.ToPort},
		Proto:   protoFromString(e.Proto),
		Size:    e.Size,
		Payload: e.Data,
	}
}

func protoFromString(s string) sim.Proto {
	switch s {
	case "SIP":
		return sim.ProtoSIP
	case "RTP":
		return sim.ProtoRTP
	case "RTCP":
		return sim.ProtoRTCP
	default:
		return sim.ProtoOther
	}
}

// Writer streams entries to an io.Writer as JSON lines.
type Writer struct {
	enc     *json.Encoder
	entries uint64
	err     error
}

// NewWriter creates a trace writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Record captures one packet at the given virtual time. Payloads that
// are not raw bytes are skipped (nothing else crosses the monitoring
// point in practice).
func (w *Writer) Record(pkt *sim.Packet, at time.Duration) error {
	if w.err != nil {
		return w.err
	}
	data, ok := pkt.Payload.([]byte)
	if !ok {
		return nil
	}
	e := Entry{
		AtNanos:  int64(at),
		Proto:    pkt.Proto.String(),
		FromHost: pkt.From.Host,
		FromPort: pkt.From.Port,
		ToHost:   pkt.To.Host,
		ToPort:   pkt.To.Port,
		Size:     pkt.Size,
		Data:     data,
	}
	if err := w.enc.Encode(e); err != nil {
		w.err = fmt.Errorf("trace: encode: %w", err)
		return w.err
	}
	w.entries++
	return nil
}

// Tap adapts the writer to a network tap callback (errors are sticky
// and surface via Err).
func (w *Writer) Tap(pkt *sim.Packet, at time.Duration) { _ = w.Record(pkt, at) }

// Entries reports how many packets were recorded.
func (w *Writer) Entries() uint64 { return w.entries }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Read loads a whole trace. Malformed lines abort with an error
// naming the line number.
func Read(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if e.AtNanos < 0 {
			return nil, fmt.Errorf("trace: line %d: negative timestamp", line)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}

// Processor consumes replayed packets (satisfied by *ids.IDS via its
// Process method).
type Processor interface {
	Process(pkt *sim.Packet)
}

// Replay schedules every entry onto the simulator at its original
// capture time and feeds it to the processor. Entries must be fed to
// a simulator whose clock has not passed the first entry's timestamp.
func Replay(s *sim.Simulator, entries []Entry, p Processor) error {
	for i, e := range entries {
		if e.At() < s.Now() {
			return fmt.Errorf("trace: entry %d at %v is in the simulator's past (%v)",
				i, e.At(), s.Now())
		}
		pkt := e.Packet()
		s.At(e.At(), func() { p.Process(pkt) })
	}
	return nil
}
