package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pkts := []*sim.Packet{
		{From: sim.Addr{Host: "a", Port: 5060}, To: sim.Addr{Host: "b", Port: 5060},
			Proto: sim.ProtoSIP, Size: 500, Payload: []byte("INVITE...")},
		{From: sim.Addr{Host: "a", Port: 20000}, To: sim.Addr{Host: "b", Port: 30000},
			Proto: sim.ProtoRTP, Size: 60, Payload: []byte{0x80, 0x12}},
		{From: sim.Addr{Host: "a", Port: 20001}, To: sim.Addr{Host: "b", Port: 30001},
			Proto: sim.ProtoRTCP, Size: 8, Payload: []byte{0x80, 0xC8}},
	}
	for i, p := range pkts {
		if err := w.Record(p, time.Duration(i)*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if w.Entries() != 3 {
		t.Fatalf("entries = %d", w.Entries())
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries", len(entries))
	}
	if entries[0].At() != 0 || entries[1].At() != time.Second {
		t.Fatalf("timestamps = %v, %v", entries[0].At(), entries[1].At())
	}
	p0 := entries[0].Packet()
	if p0.Proto != sim.ProtoSIP || p0.From.Host != "a" || p0.To.Port != 5060 {
		t.Fatalf("packet 0 = %+v", p0)
	}
	raw, ok := p0.Payload.([]byte)
	if !ok || string(raw) != "INVITE..." {
		t.Fatalf("payload = %v", p0.Payload)
	}
	p1 := entries[1].Packet()
	if p1.Proto != sim.ProtoRTP {
		t.Fatalf("packet 1 proto = %v", p1.Proto)
	}
	p2 := entries[2].Packet()
	if p2.Proto != sim.ProtoRTCP || p2.To.Port != 30001 {
		t.Fatalf("packet 2 = %+v", p2)
	}
}

func TestNonByteSlicePayloadSkipped(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Record(&sim.Packet{Payload: 42}, 0); err != nil {
		t.Fatal(err)
	}
	if w.Entries() != 0 {
		t.Fatalf("entries = %d", w.Entries())
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := Read(strings.NewReader(`{"atNanos":-5}` + "\n")); err == nil {
		t.Fatal("negative timestamp accepted")
	}
	entries, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("blank lines: %v, %v", entries, err)
	}
}

func TestProtoRoundTrip(t *testing.T) {
	for _, p := range []sim.Proto{sim.ProtoSIP, sim.ProtoRTP, sim.ProtoRTCP, sim.ProtoOther} {
		if got := protoFromString(p.String()); got != p {
			t.Fatalf("round-trip %v -> %v", p, got)
		}
	}
	if protoFromString("garbage") != sim.ProtoOther {
		t.Fatal("unknown proto must map to OTHER")
	}
}

type countingProcessor struct {
	n  int
	at []time.Duration
	s  *sim.Simulator
}

func (c *countingProcessor) Process(pkt *sim.Packet) {
	c.n++
	c.at = append(c.at, c.s.Now())
}

func TestReplaySchedulesAtOriginalTimes(t *testing.T) {
	entries := []Entry{
		{AtNanos: int64(time.Second), Proto: "SIP", Data: []byte("x"), Size: 1},
		{AtNanos: int64(3 * time.Second), Proto: "RTP", Data: []byte("y"), Size: 1},
	}
	s := sim.New(1)
	p := &countingProcessor{s: s}
	if err := Replay(s, entries, p); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if p.n != 2 {
		t.Fatalf("processed %d", p.n)
	}
	if p.at[0] != time.Second || p.at[1] != 3*time.Second {
		t.Fatalf("times = %v", p.at)
	}
}

func TestReplayRejectsPastEntries(t *testing.T) {
	s := sim.New(1)
	s.Schedule(time.Minute, func() {})
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	err := Replay(s, []Entry{{AtNanos: int64(time.Second)}}, &countingProcessor{s: s})
	if err == nil {
		t.Fatal("past entry accepted")
	}
}

// TestCaptureThenReplayDetects demonstrates the offline workflow: a
// capture of an attack replayed into a fresh IDS reproduces the
// detection.
func TestCaptureThenReplayDetects(t *testing.T) {
	// Build a tiny capture of an attack: an unsolicited RTP stream
	// with a sequence-number jump (media spam, Figure 6).
	var buf bytes.Buffer
	w := NewWriter(&buf)
	mk := func(seq uint16) *sim.Packet {
		// Minimal valid RTP: version 2, PT 18.
		raw := []byte{0x80, 18, byte(seq >> 8), byte(seq), 0, 0, 0, 1, 0, 0, 0, 9}
		return &sim.Packet{
			From:  sim.Addr{Host: "evil", Port: 4000},
			To:    sim.Addr{Host: "victim", Port: 5004},
			Proto: sim.ProtoRTP, Size: len(raw), Payload: raw,
		}
	}
	for i, seq := range []uint16{1, 2, 3, 5000} {
		if err := w.Record(mk(seq), time.Duration(i)*20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(2)
	fresh := ids.New(s2, ids.DefaultConfig())
	if err := Replay(s2, entries, fresh); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fresh.AlertsOfType(ids.AlertMediaSpam)) != 1 {
		t.Fatalf("replayed attack not detected: %v", fresh.Alerts())
	}
}

// Property: write/read identity over arbitrary payload bytes and
// timestamps.
func TestRoundTripProperty(t *testing.T) {
	prop := func(data []byte, at uint32, port uint16) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		pkt := &sim.Packet{
			From: sim.Addr{Host: "h1", Port: int(port)}, To: sim.Addr{Host: "h2", Port: 5060},
			Proto: sim.ProtoSIP, Size: len(data), Payload: data,
		}
		if err := w.Record(pkt, time.Duration(at)); err != nil {
			return false
		}
		entries, err := Read(&buf)
		if err != nil || len(entries) != 1 {
			return false
		}
		got := entries[0].Packet()
		raw, ok := got.Payload.([]byte)
		if !ok {
			return false
		}
		return bytes.Equal(raw, data) &&
			got.From.Port == int(port) &&
			entries[0].At() == time.Duration(at)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLiveVsReplayParity captures the vids vantage point during a live
// attack run and verifies a replay reproduces the identical alert
// sequence — the property that makes offline analysis trustworthy.
func TestLiveVsReplayParity(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	tb, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	tb.IDS.OnPacket = w.Tap

	if err := tb.Sim.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.PlaceCall(0, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	call := rec.Call()
	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
	info := attack.DialogInfo{
		CallID:     call.ID,
		CallerTag:  call.LocalTag,
		CalleeTag:  call.RemoteTag,
		CallerAOR:  sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:  sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost: workload.UAHost("a", 1),
		CalleeHost: call.RemoteContact.Host,
	}
	if err := atk.ByeDoS(info, true); err != nil {
		t.Fatal(err)
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	liveAlerts := tb.IDS.Alerts()
	if len(liveAlerts) == 0 {
		t.Fatal("live run detected nothing")
	}

	entries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := sim.New(99)
	fresh := ids.New(s2, ids.DefaultConfig())
	if err := Replay(s2, entries, fresh); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(tb.Sim.Now()); err != nil {
		t.Fatal(err)
	}
	replayAlerts := fresh.Alerts()
	if len(replayAlerts) != len(liveAlerts) {
		t.Fatalf("replay alerts = %v, live = %v", replayAlerts, liveAlerts)
	}
	for i := range liveAlerts {
		if replayAlerts[i].Type != liveAlerts[i].Type ||
			replayAlerts[i].CallID != liveAlerts[i].CallID {
			t.Fatalf("alert %d differs: %v vs %v", i, replayAlerts[i], liveAlerts[i])
		}
	}
}
