package metrics

import "sync/atomic"

// Counter is a lock-free monotonically increasing event counter for
// hot-path instrumentation: one cache line of state, incremented with
// a single atomic add, read without coordination. The fast-path cache
// uses a Counter per outcome (hit/miss/escalation/invalidation) so the
// stats plane can observe absorption rates without touching the
// per-stripe locks.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//vids:noalloc single atomic add on the packet hot path
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reads the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }
