package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary must be all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
}

func TestSummaryPercentile(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	if p := (&Summary{}).Percentile(50); p != 0 {
		t.Fatalf("empty p50 = %v", p)
	}
}

func TestSummaryDuration(t *testing.T) {
	var s Summary
	s.AddDuration(100 * time.Millisecond)
	s.AddDuration(300 * time.Millisecond)
	if d := s.MeanDuration(); d != 200*time.Millisecond {
		t.Fatalf("mean duration = %v", d)
	}
}

func TestSeriesBucket(t *testing.T) {
	var ts Series
	ts.Append(1*time.Second, 10)
	ts.Append(2*time.Second, 20)
	ts.Append(61*time.Second, 40)
	buckets := ts.Bucket(time.Minute)
	if len(buckets) != 2 {
		t.Fatalf("buckets = %v", buckets)
	}
	if buckets[0].Value != 15 {
		t.Fatalf("bucket 0 mean = %v", buckets[0].Value)
	}
	if buckets[1].At != time.Minute || buckets[1].Value != 40 {
		t.Fatalf("bucket 1 = %v", buckets[1])
	}
	if got := ts.Bucket(0); got != nil {
		t.Fatal("zero width must return nil")
	}
}

func TestSeriesCountPerBucket(t *testing.T) {
	var ts Series
	for i := 0; i < 5; i++ {
		ts.Append(time.Duration(i)*time.Second, 1)
	}
	ts.Append(2*time.Minute, 1)
	counts := ts.CountPerBucket(time.Minute)
	if len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0].Value != 5 || counts[1].Value != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSeriesSummary(t *testing.T) {
	var ts Series
	ts.Append(0, 1)
	ts.Append(time.Second, 3)
	s := ts.Summary()
	if s.Count() != 2 || s.Mean() != 2 {
		t.Fatalf("series summary = %v/%v", s.Count(), s.Mean())
	}
	if ts.Len() != 2 {
		t.Fatalf("len = %d", ts.Len())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("metric", "without vids", "with vids")
	tbl.AddRow("setup delay (ms)", "152.00", "252.00")
	tbl.AddRow("short")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "metric") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "252.00") {
		t.Fatalf("row = %q", lines[2])
	}
	// All lines align to the same width structure.
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule = %q", lines[1])
	}
}

func TestFormatters(t *testing.T) {
	if Ms(1500*time.Microsecond) != "1.50" {
		t.Fatalf("Ms = %q", Ms(1500*time.Microsecond))
	}
	if Sec(1500*time.Millisecond) != "1.500" {
		t.Fatalf("Sec = %q", Sec(1500*time.Millisecond))
	}
	if F(0.00021) != "0.0002" {
		t.Fatalf("F = %q", F(0.00021))
	}
	if Pct(0.036) != "3.6%" {
		t.Fatalf("Pct = %q", Pct(0.036))
	}
}

// Property: mean is always within [min, max] and percentiles are
// monotone in p.
func TestSummaryInvariants(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(float64(v))
		}
		if s.Mean() < s.Min()-1e-9 || s.Mean() > s.Max()+1e-9 {
			return false
		}
		last := math.Inf(-1)
		for _, p := range []float64{0, 25, 50, 75, 90, 99, 100} {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarChart(t *testing.T) {
	points := []Point{
		{At: 0, Value: 2},
		{At: time.Minute, Value: 8},
		{At: 2 * time.Minute, Value: 0},
	}
	out := BarChart(points, 8, func(p Point) string {
		return p.At.String()
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "########") {
		t.Fatalf("max row not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "##") {
		t.Fatalf("2/8 row wrong: %q", lines[0])
	}
	if strings.Contains(lines[2], "#") {
		t.Fatalf("zero row has bars: %q", lines[2])
	}
	if BarChart(nil, 10, nil) != "" {
		t.Fatal("empty input must render empty")
	}
}
