// Package metrics provides the small statistics toolkit the
// experiment harness uses: scalar summaries, time series, and fixed
// width table rendering for paper-style outputs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates scalar observations.
type Summary struct {
	values []float64
	sum    float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
}

// AddDuration records a duration observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count reports the number of observations.
func (s *Summary) Count() int { return len(s.values) }

// Mean reports the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min reports the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max reports the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev reports the population standard deviation.
func (s *Summary) StdDev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile reports the p-th percentile (0 <= p <= 100) using
// nearest-rank on a sorted copy.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// MeanDuration reports the mean as a time.Duration (observations are
// assumed to be seconds).
func (s *Summary) MeanDuration() time.Duration {
	return time.Duration(s.Mean() * float64(time.Second))
}

// Point is one (time, value) sample.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Append records a sample.
func (ts *Series) Append(at time.Duration, v float64) {
	ts.Points = append(ts.Points, Point{At: at, Value: v})
}

// Len reports the number of samples.
func (ts *Series) Len() int { return len(ts.Points) }

// Summary folds the series values into a Summary.
func (ts *Series) Summary() *Summary {
	var s Summary
	for _, p := range ts.Points {
		s.Add(p.Value)
	}
	return &s
}

// Bucket aggregates the series into fixed-width time bins, returning
// one point per non-empty bin carrying the bin's mean value. Used for
// the paper's per-interval plots.
func (ts *Series) Bucket(width time.Duration) []Point {
	if width <= 0 || len(ts.Points) == 0 {
		return nil
	}
	type agg struct {
		sum float64
		n   int
	}
	bins := make(map[int64]*agg)
	for _, p := range ts.Points {
		k := int64(p.At / width)
		b := bins[k]
		if b == nil {
			b = &agg{}
			bins[k] = b
		}
		b.sum += p.Value
		b.n++
	}
	keys := make([]int64, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		b := bins[k]
		out = append(out, Point{
			At:    time.Duration(k) * width,
			Value: b.sum / float64(b.n),
		})
	}
	return out
}

// CountPerBucket returns the number of samples per fixed-width bin
// (for arrival-rate plots like Figure 8).
func (ts *Series) CountPerBucket(width time.Duration) []Point {
	if width <= 0 || len(ts.Points) == 0 {
		return nil
	}
	bins := make(map[int64]int)
	for _, p := range ts.Points {
		bins[int64(p.At/width)]++
	}
	keys := make([]int64, 0, len(bins))
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		out = append(out, Point{At: time.Duration(k) * width, Value: float64(bins[k])})
	}
	return out
}

// Table renders rows of experiment output with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped and
// short rows are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ms formats a duration as fractional milliseconds.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// Sec formats a duration as fractional seconds.
func Sec(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// F formats a float with 4 significant decimals.
func F(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// BarChart renders a series of points as a horizontal ASCII bar
// chart, one row per point, scaled to maxWidth characters. Used by
// the experiment harness for Figure 8-style plots in plain text.
func BarChart(points []Point, maxWidth int, label func(Point) string) string {
	if len(points) == 0 || maxWidth <= 0 {
		return ""
	}
	maxV := points[0].Value
	for _, p := range points[1:] {
		if p.Value > maxV {
			maxV = p.Value
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	labels := make([]string, len(points))
	widest := 0
	for i, p := range points {
		labels[i] = label(p)
		if len(labels[i]) > widest {
			widest = len(labels[i])
		}
	}
	var b strings.Builder
	for i, p := range points {
		n := int(p.Value / maxV * float64(maxWidth))
		if p.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", widest, labels[i], strings.Repeat("#", n), p.Value)
	}
	return b.String()
}
