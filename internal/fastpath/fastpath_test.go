package fastpath

import (
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		Stripes:     4,
		SeqGap:      50,
		TSGap:       8000,
		RateWindow:  time.Second,
		RatePackets: 100,
	}
}

func arm(t *testing.T, c *Cache, key []byte, callID string) {
	t.Helper()
	c.Install(key, callID, 0)
	// First packet escalates (never armed) ...
	v, f, epoch, _, _ := c.Lookup(key, 0, 1, 100, 1600, 0)
	if v != Miss || f == nil {
		t.Fatalf("first lookup = %v, want Miss with flow", v)
	}
	// ... and the worker arms from machine state.
	if !c.Update(key, epoch, 0, Snapshot{Gen: 1, SSRC: 1, Seq: 100, TS: 1600, WinStart: 0, WinCount: 1}) {
		t.Fatal("arm refused")
	}
	f.Release()
}

func TestLookupHitAbsorbsInProfile(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")

	for i := 1; i <= 10; i++ {
		v, _, _, _, _ := c.Lookup(key, 0, 1, uint16(100+i), uint32(1600+160*i), time.Duration(i)*20*time.Millisecond)
		if v != Hit {
			t.Fatalf("packet %d: verdict %v, want Hit", i, v)
		}
	}
	st := c.Counters()
	if st.Hits != 10 || st.Escalations != 0 {
		t.Fatalf("counters = %+v, want 10 hits", st)
	}
	if seen, ok := c.LastSeen(string(key)); !ok || seen != 200*time.Millisecond {
		t.Fatalf("LastSeen = %v, %v", seen, ok)
	}
}

func TestLookupEscalatesAnomalies(t *testing.T) {
	cases := []struct {
		name string
		pt   uint8
		ssrc uint32
		seq  uint16
		ts   uint32
	}{
		{"payload", 9, 1, 101, 1760},
		{"ssrc", 0, 2, 101, 1760},
		{"seq jump", 0, 1, 151, 1760},
		{"ts jump", 0, 1, 101, 99999},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(testConfig())
			key := []byte("m|10.0.0.2|20000")
			arm(t, c, key, "call-1")
			v, f, _, snap, hasSnap := c.Lookup(key, tc.pt, tc.ssrc, tc.seq, tc.ts, 20*time.Millisecond)
			if v != Escalate || !hasSnap {
				t.Fatalf("verdict = %v hasSnap=%v, want Escalate with snapshot", v, hasSnap)
			}
			if snap.Seq != 100 || snap.WinCount != 1 || snap.Gen != 1 {
				t.Fatalf("snapshot = %+v, want pre-escalation window", snap)
			}
			f.Release()
			// Disarmed now: the next packet misses without a snapshot
			// (the escalated packet carried it).
			v, f2, _, _, hasSnap := c.Lookup(key, 0, 1, 102, 1920, 40*time.Millisecond)
			if v != Miss || hasSnap {
				t.Fatalf("post-escalation lookup = %v hasSnap=%v, want plain Miss", v, hasSnap)
			}
			f2.Release()
		})
	}
}

func TestLookupEscalatesRateFlood(t *testing.T) {
	cfg := testConfig()
	cfg.RatePackets = 5
	c := New(cfg)
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1") // winCount = 1
	for i := 1; i <= 4; i++ {
		v, _, _, _, _ := c.Lookup(key, 0, 1, uint16(100+i), uint32(1600+160*i), time.Millisecond*time.Duration(i))
		if v != Hit {
			t.Fatalf("packet %d: verdict %v, want Hit", i, v)
		}
	}
	v, f, _, snap, hasSnap := c.Lookup(key, 0, 1, 105, 2400, 5*time.Millisecond)
	if v != Escalate || !hasSnap || snap.WinCount != 5 {
		t.Fatalf("flood lookup = %v hasSnap=%v snap=%+v, want Escalate at winCount 5", v, hasSnap, snap)
	}
	f.Release()
}

func TestRateWindowRollsOver(t *testing.T) {
	cfg := testConfig()
	cfg.RatePackets = 5
	c := New(cfg)
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")
	for i := 1; i <= 40; i++ {
		// 4 packets per window: always under budget as windows roll.
		at := time.Duration(i) * 300 * time.Millisecond
		v, _, _, _, _ := c.Lookup(key, 0, 1, uint16(100+i), uint32(1600+160*i), at)
		if v != Hit {
			t.Fatalf("packet %d: verdict %v, want Hit", i, v)
		}
	}
}

func TestDisarmCallStopsAbsorption(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")

	c.DisarmCall([]byte("call-1"))

	v, f, _, snap, hasSnap := c.Lookup(key, 0, 1, 101, 1760, 20*time.Millisecond)
	if v != Miss || !hasSnap {
		t.Fatalf("post-BYE lookup = %v hasSnap=%v, want Miss carrying resync snapshot", v, hasSnap)
	}
	if snap.Seq != 100 {
		t.Fatalf("snapshot seq = %d, want 100", snap.Seq)
	}
	f.Release()
	if st := c.Counters(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
}

func TestStaleArmRejectedAfterInvalidation(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	c.Install(key, "call-1", 0)
	v, f, epoch, _, _ := c.Lookup(key, 0, 1, 100, 1600, 0)
	if v != Miss {
		t.Fatal("expected Miss")
	}
	// A BYE lands at ingress before the worker processes the packet.
	c.DisarmCall([]byte("call-1"))
	if c.Update(key, epoch, 0, Snapshot{Gen: 1, SSRC: 1, Seq: 100, TS: 1600}) {
		t.Fatal("stale arm accepted after invalidation")
	}
	f.Release()
}

func TestArmRefusedWithQueuedPackets(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	c.Install(key, "call-1", 0)
	_, f1, epoch, _, _ := c.Lookup(key, 0, 1, 100, 1600, 0)
	_, f2, _, _, _ := c.Lookup(key, 0, 1, 101, 1760, time.Millisecond)
	if f1 != f2 {
		t.Fatal("expected one flow entry")
	}
	// Worker processes the first packet while the second still queues:
	// arming now would let the mirror miss the queued packet.
	if c.Update(key, epoch, 0, Snapshot{Gen: 1, SSRC: 1, Seq: 100, TS: 1600}) {
		t.Fatal("arm accepted with a queued slow-path packet in flight")
	}
	f1.Release()
	if !c.Update(key, epoch, 0, Snapshot{Gen: 1, SSRC: 1, Seq: 101, TS: 1760}) {
		t.Fatal("arm refused for the last in-flight packet")
	}
	f2.Release()
}

func TestInstallRenegotiationInvalidates(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")
	// Re-advertised destination (SDP renegotiation): must invalidate.
	c.Install(key, "call-1", 0)
	v, f, _, _, hasSnap := c.Lookup(key, 0, 1, 101, 1760, 20*time.Millisecond)
	if v != Miss || !hasSnap {
		t.Fatalf("post-renegotiation lookup = %v, want Miss with snapshot", v)
	}
	f.Release()
}

func TestInstallReassignsCallOwnership(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")
	c.Install(key, "call-2", 0)
	// The old call no longer owns the flow ...
	c.DisarmCall([]byte("call-1"))
	// ... the new one does: re-arm under the new epoch and check that
	// call-2's signaling disarms it.
	v, f, epoch, _, _ := c.Lookup(key, 0, 1, 101, 1760, 20*time.Millisecond)
	if v != Miss {
		t.Fatal("expected Miss")
	}
	if !c.Update(key, epoch, 0, Snapshot{Gen: 2, SSRC: 1, Seq: 101, TS: 1760, WinCount: 1}) {
		t.Fatal("re-arm refused")
	}
	f.Release()
	c.DisarmCall([]byte("call-2"))
	if v, f, _, _, _ := c.Lookup(key, 0, 1, 102, 1920, 40*time.Millisecond); v != Miss {
		t.Fatalf("lookup after new-owner disarm = %v, want Miss", v)
	} else {
		f.Release()
	}
}

func TestRemoveDeletesFlow(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")
	c.Remove(string(key))
	if _, ok := c.LastSeen(string(key)); ok {
		t.Fatal("flow survived Remove")
	}
	if v, f, _, _, _ := c.Lookup(key, 0, 1, 101, 1760, 0); v != Miss || f != nil {
		t.Fatalf("lookup after Remove = %v flow=%v, want entry-less Miss", v, f)
	}
	// The call index is cleaned too: DisarmCall finds nothing to count.
	before := c.Counters().Invalidations
	c.DisarmCall([]byte("call-1"))
	if got := c.Counters().Invalidations; got != before {
		t.Fatalf("DisarmCall after Remove bumped invalidations %d -> %d", before, got)
	}
}

func TestReorderedPacketDoesNotRewindWindow(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	c.Install(key, "call-1", 0)
	_, f, epoch, _, _ := c.Lookup(key, 0, 1, 65533, 1600, 0)
	if !c.Update(key, epoch, 0, Snapshot{Gen: 1, SSRC: 1, Seq: 65533, TS: 1600, WinCount: 1}) {
		t.Fatal("arm refused")
	}
	f.Release()
	// In-order across the wrap with one late straggler.
	seqs := []uint16{65534, 0, 65535, 1, 2}
	for i, s := range seqs {
		v, _, _, _, _ := c.Lookup(key, 0, 1, s, uint32(1600+160*(i+1)), time.Duration(i+1)*20*time.Millisecond)
		if v != Hit {
			t.Fatalf("seq %d: verdict %v, want Hit", s, v)
		}
	}
}

// TestLookupHitAllocsZero pins the tentpole's 0 allocs/op contract:
// the absorb path — predicate check, window advance, rate accounting,
// counter bump — must not allocate. The benchmark reports the same
// number; this test makes it a hard gate wherever `go test` runs.
func TestLookupHitAllocsZero(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")

	seq, ts, at := uint16(100), uint32(1600), time.Duration(0)
	allocs := testing.AllocsPerRun(500, func() {
		seq++
		ts += 160
		at += 20 * time.Millisecond
		if v, _, _, _, _ := c.Lookup(key, 0, 1, seq, ts, at); v != Hit {
			t.Fatalf("verdict %v, want Hit", v)
		}
	})
	if allocs != 0 {
		t.Fatalf("fast-path hit allocated %.1f per op, want 0", allocs)
	}
}

// TestDisarmCallAllocsZero: the per-SIP-datagram invalidation sweep
// runs on the signaling ingestion path and must not allocate either.
func TestDisarmCallAllocsZero(t *testing.T) {
	c := New(testConfig())
	key := []byte("m|10.0.0.2|20000")
	arm(t, c, key, "call-1")
	callID := []byte("call-1")
	allocs := testing.AllocsPerRun(500, func() {
		c.DisarmCall(callID)
	})
	if allocs != 0 {
		t.Fatalf("DisarmCall allocated %.1f per op, want 0", allocs)
	}
}
