// Package fastpath is the per-flow RTP validation cache consulted by
// the ingress lanes before shard enqueue. The observation (paper
// Section 3.2, and the SecSip/stateful-firewall line of related work)
// is that every RTP-triggered alert is a *predicate violation*: an
// in-profile packet — negotiated payload type, established SSRC,
// sequence/timestamp advance within the spam window, rate inside the
// flood budget — can only fire the RTP_RCVD self-loop bookkeeping
// edge. The cache verifies exactly those predicates against mirrored
// machine state and absorbs the packet; anything else (unknown flow,
// disarmed entry, any predicate miss, SRTP-degraded traffic) escalates
// to the unmodified slow path. Alert behavior is therefore equivalent
// by construction, provided the mirrored state stays consistent — the
// invalidation and resync protocol below (see DESIGN.md §10).
//
// Consistency protocol. A flow entry is "armed" only while the shard
// worker has proven the monitored machine sits in RTP_RCVD with known
// window variables. Three counters keep the mirror honest:
//
//   - epoch: bumped by every invalidation (signaling for the owning
//     call at ingress, RTCP toward the flow, worker-side monitor
//     transitions, SDP re-install). An arm request carries the epoch
//     its packet was enqueued under and is rejected if the entry has
//     since been invalidated — a stale arm cannot resurrect a flow a
//     BYE already disarmed.
//   - inflight: the number of escalated packets of this flow inside
//     the shard queue. Arming is refused unless the arming packet is
//     the only one in flight, so machine variables can never lag
//     behind queued slow-path packets when absorption starts.
//   - gen: the owning CallMonitor's recycle generation, captured at
//     arm time and checked before a resync snapshot is applied, tying
//     cache lifetime to the PR-4 monitor recycle machinery.
//
// When an armed flow is invalidated or a predicate fails, the first
// escalated packet carries a snapshot of the absorbed window state;
// the worker applies it to the machine before delivering that packet,
// so the machine sees exactly the variable evolution it would have
// computed had it processed every absorbed packet itself.
package fastpath

import (
	"sync"
	"sync/atomic"
	"time"

	"vids/internal/metrics"
	"vids/internal/rtp"
)

// Config carries the mirrored detector thresholds (ids.RTPThresholds)
// and the stripe count. Zero thresholds are safe: the window predicate
// then rejects every advancing packet and traffic simply escalates.
type Config struct {
	// Stripes is the lock-stripe count, rounded up to a power of two.
	// Zero means 64.
	Stripes     int
	SeqGap      uint16
	TSGap       uint32
	RateWindow  time.Duration
	RatePackets int
	// RefreshEvery throttles Consult's Touch signal: at most one
	// absorbed packet per interval per flow asks the caller to refresh
	// its routing/liveness bookkeeping. Zero disables the signal (for
	// callers with no sweeps to feed).
	RefreshEvery time.Duration
}

// Snapshot is the mirrored window state handed between the cache and
// the shard worker: machine→cache at arm time, cache→machine on the
// first escalation after absorption (resync).
type Snapshot struct {
	Gen      uint32 // owning monitor's recycle generation at arm time
	SSRC     uint32
	Seq      uint16
	TS       uint32
	WinStart time.Duration
	WinCount int
}

// Verdict is the outcome of a Lookup.
type Verdict uint8

const (
	// Miss: no armed entry for the flow (unknown destination, never
	// armed, or invalidated). Escalate to the slow path; no anomaly
	// implied.
	Miss Verdict = iota
	// Hit: the packet is in-profile and was absorbed; do not enqueue.
	Hit
	// Escalate: an armed entry's predicate failed — seq/rate/payload/
	// SSRC anomaly. The entry was disarmed and the packet (carrying
	// the resync snapshot) must take the slow path, where the machine
	// will fire the matching attack transition.
	Escalate
)

// Flow is one cached media flow. The window fields are guarded by the
// owning stripe's mutex; state/needSync/inflight are atomics so
// invalidation paths (per-SIP-datagram DisarmCall) never take stripe
// locks.
type Flow struct {
	// state packs the invalidation epoch and the armed bit:
	// epoch<<1 | armed. Install starts it at 1<<1 (epoch 1, disarmed)
	// so the zero epoch never matches a real entry.
	state    atomic.Uint64
	needSync atomic.Bool
	inflight atomic.Int64

	callID string // interned by the installer; indexes byCall
	key    string // interned media key; lets the hot-slot probe verify a match
	hash   uint32 // FNV-1a of key, as computed by stripeHash

	// Guarded by the owning stripe's mutex.
	gen      uint32
	payload  uint8
	ssrc     uint32
	seq      uint16
	ts       uint32
	winStart time.Duration
	winCount int
	lastSeen time.Duration
	// shardIdx mirrors the owning call's shard so Consult can hand the
	// routing decision back without a second table; lastRefresh is the
	// last time a Hit carried the Touch signal.
	shardIdx    int
	lastRefresh time.Duration
}

// Release decrements the in-flight escalation count; the engine calls
// it once per escalated packet when the shard worker finishes with it
// (or when an overloaded queue drops it).
//
//vids:noalloc single atomic add per retired escalated packet
func (f *Flow) Release() { f.inflight.Add(-1) }

func (f *Flow) snapshotLocked() Snapshot {
	return Snapshot{
		Gen:      f.gen,
		SSRC:     f.ssrc,
		Seq:      f.seq,
		TS:       f.ts,
		WinStart: f.winStart,
		WinCount: f.winCount,
	}
}

// hotSlots is the per-stripe direct-mapped front cache size. A slot
// remembers the last flow probed for its hash bucket so steady-state
// consults skip the Go map (its second hash, bucket walk) entirely;
// Install and Remove fix the slots under the stripe lock, and a stale
// slot can at worst point at a disarmed flow, which escalates.
const hotSlots = 8

type hotSlot struct {
	h uint32
	f *Flow // nil = empty
}

type stripe struct {
	mu    sync.Mutex
	flows map[string]*Flow
	hot   [hotSlots]hotSlot
	// Outcome tallies, guarded by mu: every consult already holds the
	// stripe lock when the outcome is known, so these are plain adds,
	// not atomics. Counters sums them across stripes.
	hits        uint64
	misses      uint64
	escalations uint64
	// pad keeps neighboring stripes' hot mutexes off one cache line.
	_ [40]byte
}

// hotIndex picks the slot for a key hash: the low bits chose the
// stripe, so the slot uses high bits to stay independent of it.
func hotIndex(h uint32) uint32 { return (h >> 16) & (hotSlots - 1) }

// Stats are the cache's lifetime counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Escalations   uint64
	Invalidations uint64
}

// Cache is the lock-striped flow table.
//
// Lock ordering: stripe mutexes are leaves of the ingress lane locks
// (Lookup/Install/Disarm run under a lane's mutex) and are never held
// across calls out of this package. byCallMu is acquired on its own,
// never nested with a stripe mutex.
//
//vids:lockorder ingress.lane.mu -> fastpath.stripe.mu
//vids:lockorder ingress.lane.mu -> fastpath.Cache.byCallMu
type Cache struct {
	cfg     Config
	stripes []stripe
	mask    uint32

	// invalidations stays an atomic counter: disarm paths (DisarmCall,
	// worker-side hooks) run without the stripe lock.
	invalidations metrics.Counter

	// byCall maps an owning Call-ID to its flows so the per-SIP-packet
	// ingress invalidation (DisarmCall) finds them without knowing the
	// media keys. Mutated only on install/remove (SDP observation and
	// monitor eviction — cold); the disarm itself is atomics-only.
	byCallMu sync.RWMutex
	byCall   map[string][]*Flow
}

// New builds a cache for the given thresholds.
func New(cfg Config) *Cache {
	n := cfg.Stripes
	if n <= 0 {
		n = 64
	}
	// Round up to a power of two for mask indexing.
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Cache{
		cfg:     cfg,
		stripes: make([]stripe, p),
		mask:    uint32(p - 1),
		byCall:  make(map[string][]*Flow),
	}
	for i := range c.stripes {
		c.stripes[i].flows = make(map[string]*Flow)
	}
	return c
}

//vids:noalloc per-packet stripe selection (FNV-1a over the media key)
func (c *Cache) stripeHash(key []byte) (*stripe, uint32) {
	h := uint32(2166136261)
	for _, b := range key {
		h = (h ^ uint32(b)) * 16777619
	}
	return &c.stripes[h&c.mask], h //vids:panic-ok mask is len(stripes)-1 with len a power of two, both fixed at New
}

func (c *Cache) stripeHashString(key string) (*stripe, uint32) {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.stripes[h&c.mask], h
}

// Consult bundles everything the ingress tier needs to dispose of one
// RTP packet from a single cache probe: the verdict, the slow-path
// enqueue arguments, the owning call's shard, and the amortized
// liveness signal.
type Consult struct {
	Verdict Verdict
	// Flow is non-nil whenever an entry exists for the key; on
	// Miss/Escalate its in-flight count was incremented and the engine
	// must Release it exactly once.
	Flow    *Flow
	Epoch   uint64
	Snap    Snapshot
	HasSnap bool
	// ShardIdx is the owning call's shard, mirrored at install time —
	// meaningful whenever Flow is non-nil or the verdict is Hit.
	ShardIdx int
	// Touch is set on at most one Hit per RefreshEvery per flow: the
	// caller should refresh whatever routing/liveness bookkeeping the
	// absorbed stream no longer refreshes per packet.
	Touch bool
}

// Lookup consults the cache for one RTP packet. On Hit the packet was
// absorbed: flow state advanced, nothing to enqueue. On Miss/Escalate
// the caller must enqueue the packet to the owning shard carrying
// (flow, epoch, snap, hasSnap); flow is non-nil whenever an entry
// exists and its in-flight count was incremented — the engine must
// Release it exactly once.
//
//vids:noalloc the keyed consult: map probe, predicate, window update under one stripe lock
//vids:nopanic per-packet consult keyed by attacker-controlled header fields
func (c *Cache) Lookup(key []byte, pt uint8, ssrc uint32, seq uint16, ts uint32, at time.Duration) (v Verdict, f *Flow, epoch uint64, snap Snapshot, hasSnap bool) {
	var res Consult
	c.ConsultKey(key, pt, ssrc, seq, ts, at, &res)
	return res.Verdict, res.Flow, res.Epoch, res.Snap, res.HasSnap
}

// ConsultKey is Lookup writing the full ingress-facing bundle into
// res — shard routing and the Touch signal ride along, so an absorbed
// packet's whole disposition costs one stripe lock, no second table
// probe, and no 70-byte struct copy per return. Every field except
// Snap is overwritten; Snap is meaningful only when HasSnap is set.
//
//vids:noalloc the fast-path hit root: one stripe lock per RTP packet
//vids:nopanic per-packet consult keyed by attacker-controlled header fields
func (c *Cache) ConsultKey(key []byte, pt uint8, ssrc uint32, seq uint16, ts uint32, at time.Duration, res *Consult) {
	st, h := c.stripeHash(key)
	slot := &st.hot[hotIndex(h)] //vids:panic-ok hotIndex masks with hotSlots-1 and hot has exactly hotSlots entries
	st.mu.Lock()
	f := slot.f
	if f == nil || slot.h != h || f.key != string(key) {
		f = st.flows[string(key)]
		if f == nil {
			st.misses++
			st.mu.Unlock()
			res.Verdict, res.Flow, res.Epoch = Miss, nil, 0
			res.HasSnap, res.ShardIdx, res.Touch = false, 0, false
			return
		}
		slot.h, slot.f = h, f
	}
	c.consultLocked(st, f, pt, ssrc, seq, ts, at, res)
}

// consultLocked evaluates the fast-path predicate for f with st.mu
// held; it unlocks st.mu on every path.
//
//vids:noalloc shared predicate body of Lookup and ConsultKey
func (c *Cache) consultLocked(st *stripe, f *Flow, pt uint8, ssrc uint32, seq uint16, ts uint32, at time.Duration, res *Consult) {
	res.ShardIdx = f.shardIdx
	res.HasSnap, res.Touch = false, false
	state := f.state.Load()
	res.Epoch = state >> 1
	if state&1 == 0 {
		// Disarmed: escalate. The first packet after an invalidation
		// of an armed flow carries the resync snapshot.
		if f.needSync.CompareAndSwap(true, false) {
			res.Snap = f.snapshotLocked()
			res.HasSnap = true
		}
		f.inflight.Add(1)
		st.misses++
		st.mu.Unlock()
		res.Verdict, res.Flow = Miss, f
		return
	}
	// Armed: evaluate exactly the RTP_RCVD self-loop guard
	// (payloadOK && sameSSRC && gapOK && rateOK) against the mirror.
	if pt != f.payload || ssrc != f.ssrc ||
		!rtp.WindowOK(f.seq, seq, f.ts, ts, c.cfg.SeqGap, c.cfg.TSGap) {
		res.Snap = f.snapshotLocked()
		res.HasSnap = true
		c.disarmFlow(f, false) // the escalated packet itself carries the snapshot
		f.inflight.Add(1)
		st.escalations++
		st.mu.Unlock()
		res.Verdict, res.Flow = Escalate, f
		return
	}
	// rateOK guard + self-loop action, fused: roll the window, count
	// the packet, or flag the flood.
	if at-f.winStart > c.cfg.RateWindow {
		f.winStart = at
		f.winCount = 1
	} else if f.winCount < c.cfg.RatePackets {
		f.winCount++
	} else {
		res.Snap = f.snapshotLocked()
		res.HasSnap = true
		c.disarmFlow(f, false)
		f.inflight.Add(1)
		st.escalations++
		st.mu.Unlock()
		res.Verdict, res.Flow = Escalate, f
		return
	}
	f.seq, f.ts = rtp.WindowAdvance(f.seq, seq, f.ts, ts)
	f.lastSeen = at
	if c.cfg.RefreshEvery > 0 && at-f.lastRefresh > c.cfg.RefreshEvery {
		f.lastRefresh = at
		res.Touch = true
	}
	st.hits++
	st.mu.Unlock()
	res.Verdict, res.Flow = Hit, nil
}

// Update arms (or refreshes) a flow from the shard worker after a
// clean steady-state packet: the monitored machine is in RTP_RCVD and
// snap holds its window variables. The arm is refused unless the
// entry still exists, its epoch matches the epoch the packet was
// enqueued under (no invalidation since), and the arming packet is
// the only one of this flow in flight (no queued slow-path packets
// the mirror would miss).
//
//vids:noalloc the fast-path arm root, called per clean steady-state packet from the shard worker
//vids:nopanic runs on the shard worker against attacker-driven flow state
func (c *Cache) Update(key []byte, epoch uint64, payload uint8, snap Snapshot) bool {
	st, _ := c.stripeHash(key)
	st.mu.Lock()
	f := st.flows[string(key)]
	if f == nil {
		st.mu.Unlock()
		return false
	}
	for {
		old := f.state.Load()
		if old>>1 != epoch || old&1 == 1 || f.inflight.Load() != 1 {
			st.mu.Unlock()
			return false
		}
		f.gen = snap.Gen
		f.payload = payload
		f.ssrc = snap.SSRC
		f.seq = snap.Seq
		f.ts = snap.TS
		f.winStart = snap.WinStart
		f.winCount = snap.WinCount
		if f.state.CompareAndSwap(old, old|1) {
			f.needSync.Store(false)
			st.mu.Unlock()
			return true
		}
		// A concurrent invalidation bumped the epoch; the next load
		// sees the mismatch and refuses the arm.
	}
}

// disarmFlow bumps the epoch and clears the armed bit. markSync
// requests a resync snapshot on the next escalated packet (external
// invalidations); predicate escalations carry the snapshot themselves.
//
//vids:noalloc atomics-only invalidation, shared by every disarm path
func (c *Cache) disarmFlow(f *Flow, markSync bool) {
	for {
		old := f.state.Load()
		if f.state.CompareAndSwap(old, (old>>1+1)<<1) {
			if old&1 == 1 {
				c.invalidations.Inc()
				if markSync {
					f.needSync.Store(true)
				}
			}
			return
		}
	}
}

// Install registers an advertised media destination for callID,
// creating a disarmed entry (or invalidating the existing one — an
// SDP renegotiation changes what in-profile means). shardIdx is the
// owning call's shard, handed back from every Consult so the absorb
// path needs no routing table of its own. callID must be an
// interned/stable string; the cache aliases it. The returned record is
// stable for the entry's lifetime.
func (c *Cache) Install(key []byte, callID string, shardIdx int) *Flow {
	st, h := c.stripeHash(key)
	st.mu.Lock()
	f := st.flows[string(key)]
	if f != nil {
		prevCall := f.callID
		f.callID = callID
		f.shardIdx = shardIdx
		st.hot[hotIndex(h)] = hotSlot{h: h, f: f}
		st.mu.Unlock()
		c.disarmFlow(f, true)
		if prevCall != callID {
			c.byCallMu.Lock()
			c.byCallRemove(prevCall, f)
			c.byCall[callID] = append(c.byCall[callID], f) //vids:alloc-ok ownership reassignment is per-SDP-observation, cold next to the stream it validates
			c.byCallMu.Unlock()
		}
		return f
	}
	ks := string(key)                                               //vids:alloc-ok interns the key once per flow lifetime
	f = &Flow{callID: callID, key: ks, hash: h, shardIdx: shardIdx} //vids:alloc-ok one flow record per advertised destination, allocated per SDP observation
	f.state.Store(1 << 1)
	st.flows[ks] = f //vids:alloc-ok per-SDP-observation insert
	st.hot[hotIndex(h)] = hotSlot{h: h, f: f}
	st.mu.Unlock()
	c.byCallMu.Lock()
	c.byCall[callID] = append(c.byCall[callID], f) //vids:alloc-ok per-SDP-observation index append, cold next to the stream it validates
	c.byCallMu.Unlock()
	return f
}

// Disarm invalidates the flow at key (ingress RTCP path). No-op for
// unknown keys.
//
//vids:noalloc per-RTCP-datagram invalidation on the ingestion path
//vids:nopanic per-datagram invalidation keyed by attacker-controlled bytes
func (c *Cache) Disarm(key []byte) {
	st, _ := c.stripeHash(key)
	st.mu.Lock()
	f := st.flows[string(key)]
	st.mu.Unlock()
	if f != nil {
		c.disarmFlow(f, true)
	}
}

// Invalidate invalidates the flow at key (worker-side monitor
// transition hook: δ events, SDP re-index).
func (c *Cache) Invalidate(key string) {
	st, _ := c.stripeHashString(key)
	st.mu.Lock()
	f := st.flows[key]
	st.mu.Unlock()
	if f != nil {
		c.disarmFlow(f, true)
	}
}

// DisarmCall invalidates every flow owned by a Call-ID. The ingress
// calls this for each SIP datagram before enqueueing it, so any
// signaling that could change what the call's RTP means happens-before
// the next absorption decision — the adversarial "RTP racing BYE"
// interleaving resolves exactly as the serialized slow path would.
//
//vids:noalloc per-SIP-datagram invalidation on the ingestion path
//vids:nopanic per-datagram invalidation keyed by attacker-controlled bytes
func (c *Cache) DisarmCall(callID []byte) {
	c.byCallMu.RLock()
	flows := c.byCall[string(callID)]
	for _, f := range flows {
		c.disarmFlow(f, true)
	}
	c.byCallMu.RUnlock()
}

// Remove deletes the flow at key (monitor eviction/recycle: the call
// is gone, so is the mirror). The record is disarmed as it goes, so a
// handle a routing tier cached keeps failing closed — escalation, not
// absorption — until its own entry is torn down too.
func (c *Cache) Remove(key string) {
	st, h := c.stripeHashString(key)
	st.mu.Lock()
	f := st.flows[key]
	if f == nil {
		st.mu.Unlock()
		return
	}
	delete(st.flows, key)
	if slot := &st.hot[hotIndex(h)]; slot.f == f {
		slot.f = nil
	}
	st.mu.Unlock()
	c.disarmFlow(f, false)
	c.byCallMu.Lock()
	c.byCallRemove(f.callID, f)
	c.byCallMu.Unlock()
}

func (c *Cache) byCallRemove(callID string, f *Flow) {
	flows := c.byCall[callID]
	for i, g := range flows {
		if g == f {
			flows[i] = flows[len(flows)-1]
			flows[len(flows)-1] = nil
			flows = flows[:len(flows)-1]
			break
		}
	}
	if len(flows) == 0 {
		delete(c.byCall, callID)
	} else {
		c.byCall[callID] = flows //vids:alloc-ok shrinking in-place reslice store; runs per teardown/renegotiation, not per packet
	}
}

// LastSeen reports when the flow last absorbed a packet (virtual
// timeline). The idle-eviction sweep consults it so a call whose
// media is being absorbed — and therefore never refreshes the
// monitor's LastActivity — is not evicted as idle.
func (c *Cache) LastSeen(key string) (time.Duration, bool) {
	st, _ := c.stripeHashString(key)
	st.mu.Lock()
	f := st.flows[key]
	if f == nil {
		st.mu.Unlock()
		return 0, false
	}
	seen := f.lastSeen
	st.mu.Unlock()
	return seen, true
}

// Counters reports the lifetime outcome counts, summing the
// stripe-local tallies (one lock hop per stripe — reporting is cold
// next to the stream it counts).
func (c *Cache) Counters() Stats {
	st := Stats{Invalidations: c.invalidations.Load()}
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Escalations += s.escalations
		s.mu.Unlock()
	}
	return st
}
