package speclint

import (
	"strings"
	"testing"

	"vids/internal/core"
	"vids/internal/ids"
)

func findingsFor(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func assertOnly(t *testing.T, fs []Finding, check string, wantCount int) {
	t.Helper()
	if got := len(findingsFor(fs, check)); got != wantCount {
		t.Fatalf("%s findings = %d, want %d (all: %v)", check, got, wantCount, fs)
	}
	if len(fs) != wantCount {
		t.Fatalf("unexpected extra findings: %v", fs)
	}
}

// --- Single-machine checks ------------------------------------------------

func TestLintSpecCleanMachine(t *testing.T) {
	s := core.NewSpec("clean", "S0")
	s.On("S0", "a", nil, nil, "S1")
	s.On("S1", "b", nil, nil, "S0")
	s.Final("S0")
	if fs := LintSpec(s); len(fs) != 0 {
		t.Fatalf("clean spec produced findings: %v", fs)
	}
}

func TestLintSpecLivelockSink(t *testing.T) {
	s := core.NewSpec("live", "S0")
	s.On("S0", "a", nil, nil, "DONE")
	s.On("S0", "b", nil, nil, "SINK")
	s.On("SINK", "c", nil, nil, "SINK")
	s.Final("DONE")
	fs := LintSpec(s)
	assertOnly(t, fs, CheckLivelock, 1)
	if !strings.Contains(fs[0].Detail, "SINK") {
		t.Fatalf("livelock finding does not name the sink: %v", fs[0])
	}
}

func TestLintSpecAttackStateIsNotLivelock(t *testing.T) {
	// An absorbing attack state is a legitimate terminal: the alert
	// fired and the analysis engine will evict the call.
	s := core.NewSpec("atk", "S0")
	s.On("S0", "a", nil, nil, "ATTACK")
	s.On("ATTACK", "a", nil, nil, "ATTACK")
	s.Attack("ATTACK")
	if fs := LintSpec(s); len(fs) != 0 {
		t.Fatalf("attack terminal flagged: %v", fs)
	}
}

func TestLintSpecShadowedCatchAll(t *testing.T) {
	s := core.NewSpec("shadow", "S0")
	s.On("S0", "e", nil, nil, "S1")
	s.On("S0", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") > 0 }, nil, "S1")
	s.On("S1", "e", nil, nil, "S1")
	s.Final("S1")
	fs := LintSpec(s)
	assertOnly(t, fs, CheckShadowed, 1)
}

func TestLintSpecGuardedSiblingWithDistinctTargetIsFine(t *testing.T) {
	s := core.NewSpec("okfallback", "S0")
	s.On("S0", "e", nil, nil, "S0") // catch-all loops
	s.On("S0", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") > 0 }, nil, "S1")
	s.Final("S0", "S1")
	if fs := LintSpec(s); len(fs) != 0 {
		t.Fatalf("legitimate fallback flagged: %v", fs)
	}
}

func TestLintSpecUnreachableAndNeverTargeted(t *testing.T) {
	s := core.NewSpec("orphan", "S0")
	s.On("S0", "a", nil, nil, "S0")
	s.On("LOST", "a", nil, nil, "S0") // LOST has no inbound edge
	s.Final("S0")
	fs := LintSpec(s)
	if len(findingsFor(fs, CheckUnreachable)) != 1 {
		t.Fatalf("unreachable not flagged: %v", fs)
	}
	if len(findingsFor(fs, CheckNeverTargeted)) != 1 {
		t.Fatalf("never-targeted not flagged: %v", fs)
	}
}

func TestLintSpecReportsValidateFailure(t *testing.T) {
	s := core.NewSpec("typo", "S0")
	s.On("S0", "a", nil, nil, "TYPO")
	fs := LintSpec(s)
	if len(findingsFor(fs, CheckValidate)) != 1 {
		t.Fatalf("validate failure not surfaced: %v", fs)
	}
}

// --- δ-channel contract ---------------------------------------------------

// loopSpec is a minimal well-formed peer: a final initial state with
// a data self-loop, so it always accepts input and never deadlocks.
func loopSpec(name string) *core.Spec {
	s := core.NewSpec(name, "T0")
	s.On("T0", name+".data", nil, nil, "T0")
	s.Final("T0")
	return s
}

func TestOrphanDeltaEmitter(t *testing.T) {
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		c.Emit("b", core.Event{Name: "delta.gone"})
	}, "S1")
	a.On("S1", "go", nil, nil, "S1")
	a.Final("S1")
	b := loopSpec("b") // never consumes delta.gone

	fs := LintSystem([]*core.Spec{a, b}, DefaultOptions())
	got := findingsFor(fs, CheckOrphanEmitter)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "delta.gone") {
		t.Fatalf("orphan emitter not flagged: %v", fs)
	}
}

func TestOrphanDeltaConsumer(t *testing.T) {
	a := loopSpec("a")
	b := core.NewSpec("b", "T0")
	b.On("T0", "b.data", nil, nil, "T0")
	b.On("T0", "delta.ghost", nil, nil, "T1") // nobody emits delta.ghost
	b.On("T1", "b.data", nil, nil, "T1")
	b.Final("T0", "T1")

	fs := LintSystem([]*core.Spec{a, b}, DefaultOptions())
	got := findingsFor(fs, CheckOrphanConsumer)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "delta.ghost") {
		t.Fatalf("orphan consumer not flagged: %v", fs)
	}
}

func TestUnknownDeltaTarget(t *testing.T) {
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		c.Emit("nobody", core.Event{Name: "delta.x"})
	}, "S0")
	a.Final("S0")

	fs := LintSystem([]*core.Spec{a, loopSpec("b")}, DefaultOptions())
	got := findingsFor(fs, CheckUnknownTarget)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "nobody") {
		t.Fatalf("unknown target not flagged: %v", fs)
	}
}

func TestConditionalEmissionDiscoveredThroughProbes(t *testing.T) {
	// The emission only happens when the event carries an sdpAddr —
	// exactly how the real SIP spec opens the RTP direction. The
	// default probe set must drive the action through the branch.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		if c.Event.StringArg("sdpAddr") != "" {
			c.Emit("b", core.Event{Name: "delta.open"})
		}
	}, "S0")
	a.Final("S0")
	b := core.NewSpec("b", "T0")
	b.On("T0", "b.data", nil, nil, "T0")
	b.On("T0", "delta.open", nil, nil, "T1")
	b.On("T1", "b.data", nil, nil, "T1")
	b.Final("T0", "T1")

	fs := LintSystem([]*core.Spec{a, b}, DefaultOptions())
	if len(fs) != 0 {
		t.Fatalf("conditional emission not discovered: %v", fs)
	}
}

// --- Product exploration --------------------------------------------------

func TestProductDeadlock(t *testing.T) {
	// After "go", machine a waits forever for a δ that nobody sends
	// while b accepts nothing at all: a deadlocked configuration.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, nil, "S1")
	a.On("S1", "delta.x", nil, nil, "S2")
	a.Final("S2")
	b := core.NewSpec("b", "T0")

	fs := LintSystem([]*core.Spec{a, b}, DefaultOptions())
	got := findingsFor(fs, CheckDeadlock)
	if len(got) != 1 {
		t.Fatalf("deadlock not flagged exactly once: %v", fs)
	}
	if !strings.Contains(got[0].Detail, "a=S1") || !strings.Contains(got[0].Detail, "b=T0") {
		t.Fatalf("deadlock finding does not describe the configuration: %v", got[0])
	}
}

func TestProductUnreachableAttack(t *testing.T) {
	// ATTACK is reachable in a's own graph (one δ transition away)
	// but no peer ever emits delta.go, so the product never gets
	// there: the detection can never fire.
	a := core.NewSpec("a", "S0")
	a.On("S0", "a.data", nil, nil, "S0")
	a.On("S0", "delta.go", nil, nil, "ATTACK")
	a.On("ATTACK", "a.data", nil, nil, "ATTACK")
	a.Final("S0")
	a.Attack("ATTACK")

	fs := LintSystem([]*core.Spec{a, loopSpec("b")}, DefaultOptions())
	if got := findingsFor(fs, CheckProductAttack); len(got) != 1 ||
		!strings.Contains(got[0].Detail, "ATTACK") {
		t.Fatalf("product-unreachable attack not flagged: %v", fs)
	}
	// The same broken contract also shows up as an orphan consumer.
	if got := findingsFor(fs, CheckOrphanConsumer); len(got) != 1 {
		t.Fatalf("orphan consumer missing: %v", fs)
	}
}

func TestProductAttackReachableThroughDelta(t *testing.T) {
	// Same machine, but now b emits the δ: both checks must go quiet.
	a := core.NewSpec("a", "S0")
	a.On("S0", "a.data", nil, nil, "S0")
	a.On("S0", "delta.go", nil, nil, "ATTACK")
	a.On("ATTACK", "a.data", nil, nil, "ATTACK")
	a.Final("S0")
	a.Attack("ATTACK")
	b := core.NewSpec("b", "T0")
	b.On("T0", "b.data", nil, func(c *core.Ctx) {
		c.Emit("a", core.Event{Name: "delta.go"})
	}, "T0")
	b.Final("T0")

	if fs := LintSystem([]*core.Spec{a, b}, DefaultOptions()); len(fs) != 0 {
		t.Fatalf("healthy contract produced findings: %v", fs)
	}
}

func TestDuplicateMachineNames(t *testing.T) {
	fs := LintSystem([]*core.Spec{loopSpec("a"), loopSpec("a")}, DefaultOptions())
	if got := findingsFor(fs, CheckDuplicateName); len(got) != 1 {
		t.Fatalf("duplicate machine name not flagged: %v", fs)
	}
}

// --- The real specifications must lint clean ------------------------------

func TestRealSpecsLintClean(t *testing.T) {
	cfg := ids.DefaultConfig()
	for _, s := range ids.Specs(cfg) {
		if fs := LintSpec(s); len(fs) != 0 {
			t.Errorf("%s: %d finding(s):", s.Name, len(fs))
			for _, f := range fs {
				t.Errorf("  %s", f)
			}
		}
	}
	if fs := LintSystem(ids.SystemSpecs(cfg), DefaultOptions()); len(fs) != 0 {
		t.Errorf("system: %d finding(s):", len(fs))
		for _, f := range fs {
			t.Errorf("  %s", f)
		}
	}
}

func TestRealSpecsProductCoversEveryAttack(t *testing.T) {
	// Belt and braces for the acceptance criterion: every attack
	// state of the communicating triple is entered during bounded
	// product exploration (TestRealSpecsLintClean would fail with
	// product-unreachable-attack findings otherwise, but this makes
	// the coverage explicit).
	cfg := ids.DefaultConfig()
	specs := ids.SystemSpecs(cfg)
	opts := DefaultOptions()
	fs := exploreProduct(specs, discoverEmissions(specs, opts), opts, nil)
	if len(fs) != 0 {
		t.Fatalf("product exploration findings: %v", fs)
	}
}
