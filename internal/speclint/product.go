package speclint

import (
	"fmt"
	"sort"
	"strings"

	"vids/internal/core"
)

// maxProductConfigs caps the explored product state space. If the cap
// is hit the exploration is truncated and the (absence-based)
// product-unreachable-attack check is suppressed to avoid false
// positives; deadlocks and queue-bound violations found up to the cap
// are still reported.
const maxProductConfigs = 100000

// maxFindingsPerCheck caps how many deadlock / queue-bound findings
// one exploration reports — past a handful they repeat the same root
// cause.
const maxFindingsPerCheck = 5

// productTransition is one move of one machine, pre-resolved for
// exploration: the underlying spec transition plus the discovered
// emission alternatives of its action.
type productTransition struct {
	t    core.Transition
	alts []emitAlt
}

// config is one product configuration: the control state of every
// machine plus the pending sync queue. Variable vectors are
// deliberately abstracted away (guards are treated as "may be true"),
// so exploration over-approximates per-machine behavior while keeping
// the δ-channel causality exact: a sync event only circulates if some
// transition actually emits it. node indexes the witness step that
// produced this configuration (-1 for the initial one), so every
// finding can reconstruct the concrete event sequence that led to it.
type config struct {
	states []core.State
	queue  []qmsg
	depth  int
	node   int
}

func (c config) key() string {
	var b strings.Builder
	for _, st := range c.states {
		b.WriteString(string(st))
		b.WriteByte(0)
	}
	b.WriteByte(1)
	for _, q := range c.queue {
		b.WriteString(q.target)
		b.WriteByte(0x1f)
		b.WriteString(q.name)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// witnessNode is one entry of the exploration's parent-pointer tree.
type witnessNode struct {
	parent int
	step   WitnessStep
}

// pathTo reconstructs the witness path from the root to node n.
func pathTo(nodes []witnessNode, n int) []WitnessStep {
	var out []WitnessStep
	for ; n >= 0; n = nodes[n].parent {
		out = append(out, nodes[n].step)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

func emitsOf(alt emitAlt) []WitnessEmit {
	if len(alt.msgs) == 0 {
		return nil
	}
	out := make([]WitnessEmit, len(alt.msgs))
	for i, q := range alt.msgs {
		out[i] = WitnessEmit{Target: q.target, Event: q.name}
	}
	return out
}

// inputArgs picks the event arguments recorded on an injected witness
// step: a probe under which the transition's guard holds and — when
// possible — its action reproduces the emission alternative the
// exploration chose.
func inputArgs(t core.Transition, alt emitAlt, opts Options) map[string]any {
	if alt.probe != nil && guardHolds(t, alt.probe, opts.ProbeGlobals) {
		return copyProbe(alt.probe)
	}
	args, _ := satisfyingProbe(t, opts)
	return args
}

// exploreProduct walks the communicating product breadth-first up to
// opts.ProductDepth external inputs (sync cascades between inputs are
// free), keeping parent pointers so every finding carries a concrete
// witness path. It reports three classes of findings: deadlocked
// configurations, δ-queue-bound violations (a reachable configuration
// whose FIFO would exceed opts.MaxQueue — the first step toward
// unbounded queue growth), and attack states that are reachable in a
// machine's own graph but never entered in the product — a detection
// that the synchronization contract makes impossible.
// fired, when non-nil, collects every transition the exploration
// takes (keyed as a core.CoverageObserver would see it) — the static
// reachability half of cmd/speccover's coverage report.
func exploreProduct(specs []*core.Spec, em *emissions, opts Options, fired map[TransitionKey]bool) []Finding {
	idx := make(map[string]int, len(specs))
	for i, s := range specs {
		idx[s.Name] = i
	}
	external := make(map[string]bool, len(opts.ExternalEvents))
	for _, e := range opts.ExternalEvents {
		external[e] = true
	}

	// Pre-resolve each machine's transitions by source state.
	byState := make([]map[core.State][]productTransition, len(specs))
	for i, s := range specs {
		ts := s.Transitions()
		alts := em.alts[s.Name]
		m := make(map[core.State][]productTransition)
		for j, t := range ts {
			m[t.From] = append(m[t.From], productTransition{t: t, alts: alts[j]})
		}
		byState[i] = m
	}
	isInput := func(event string) bool {
		return external[event] || !strings.HasPrefix(event, opts.SyncPrefix)
	}

	start := config{states: make([]core.State, len(specs)), node: -1}
	attackSeen := make([]map[core.State]bool, len(specs))
	for i, s := range specs {
		start.states[i] = s.Initial
		attackSeen[i] = make(map[core.State]bool)
	}

	var findings []Finding
	deadlocks := 0
	overflows := 0
	overflowSeen := make(map[string]bool)
	truncated := false
	visited := map[string]bool{start.key(): true}
	var nodes []witnessNode
	frontier := []config{start}

	note := func(c config) {
		for i, st := range c.states {
			if specs[i].IsAttack(st) {
				attackSeen[i][st] = true
			}
		}
	}
	note(start)

	// overflow reports one δ-queue-bound violation: taking step from
	// cur's configuration would push the FIFO to qlen > opts.MaxQueue.
	// The offending configuration stays pruned (exploration remains
	// bounded); the finding documents it with a replayable witness.
	overflow := func(cur config, step WitnessStep, qlen int) {
		key := step.Machine + "\x00" + step.Event + "\x00" + string(step.From)
		if overflows >= maxFindingsPerCheck || overflowSeen[key] {
			return
		}
		overflowSeen[key] = true
		overflows++
		findings = append(findings, Finding{
			Machine: "system", Check: CheckQueueBound,
			Detail:  fmt.Sprintf("δ queue reaches %d pending messages (bound %d) after %q takes %q in state %q: the FIFO is growing toward the configured bound", qlen, opts.MaxQueue, step.Machine, step.Event, step.From),
			Witness: append(pathTo(nodes, cur.node), step),
		})
	}

	for len(frontier) > 0 {
		if len(visited) > maxProductConfigs {
			truncated = true
			break
		}
		cur := frontier[0]
		frontier = frontier[1:]

		push := func(next config, step WitnessStep) {
			k := next.key()
			if visited[k] {
				return
			}
			visited[k] = true
			nodes = append(nodes, witnessNode{parent: cur.node, step: step})
			next.node = len(nodes) - 1
			note(next)
			frontier = append(frontier, next)
		}

		if len(cur.queue) > 0 {
			// Priority rule (paper Section 4.2): pending δ messages
			// are delivered before any further input. Delivery of the
			// head is the only enabled move.
			msg := cur.queue[0]
			rest := cur.queue[1:]
			i, ok := idx[msg.target]
			delivered := false
			if ok {
				for _, pt := range byState[i][cur.states[i]] {
					if pt.t.Event != msg.name {
						continue
					}
					delivered = true
					if fired != nil {
						fired[TransitionKey{Machine: msg.target, From: cur.states[i], Event: msg.name, To: pt.t.To, Label: pt.t.Label}] = true
					}
					for _, alt := range pt.alts {
						step := WitnessStep{
							Machine: msg.target, Event: msg.name, Sync: true,
							From: cur.states[i], To: pt.t.To, Label: pt.t.Label,
							Emits: emitsOf(alt),
						}
						q := appendQueue(rest, alt)
						if len(q) > opts.MaxQueue {
							overflow(cur, step, len(q))
							continue
						}
						push(config{states: cloneWith(cur.states, i, pt.t.To), queue: q, depth: cur.depth}, step)
					}
				}
			}
			if !delivered {
				// The peer no longer cares (core.System tolerates
				// this) or the target is unknown: the message drops.
				push(config{states: cur.states, queue: cloneQueue(rest), depth: cur.depth},
					WitnessStep{Machine: msg.target, Event: msg.name, Sync: true, Dropped: true})
			}
			continue
		}

		// Queue empty: feed any external input to any machine.
		moved := false
		if cur.depth < opts.ProductDepth {
			for i := range specs {
				for _, pt := range byState[i][cur.states[i]] {
					if !isInput(pt.t.Event) {
						continue
					}
					moved = true
					if fired != nil {
						fired[TransitionKey{Machine: specs[i].Name, From: cur.states[i], Event: pt.t.Event, To: pt.t.To, Label: pt.t.Label}] = true
					}
					for _, alt := range pt.alts {
						step := WitnessStep{
							Machine: specs[i].Name, Event: pt.t.Event,
							From: cur.states[i], To: pt.t.To, Label: pt.t.Label,
							Args:  inputArgs(pt.t, alt, opts),
							Emits: emitsOf(alt),
						}
						if len(alt.msgs) > opts.MaxQueue {
							overflow(cur, step, len(alt.msgs))
							continue
						}
						push(config{
							states: cloneWith(cur.states, i, pt.t.To),
							queue:  cloneQueue(alt.msgs),
							depth:  cur.depth + 1,
						}, step)
					}
				}
			}
		} else {
			continue // depth bound reached: neither expand nor judge
		}

		if !moved && !allTerminal(specs, cur.states) && deadlocks < maxFindingsPerCheck {
			deadlocks++
			findings = append(findings, Finding{
				Machine: "system", Check: CheckDeadlock,
				Detail:  fmt.Sprintf("configuration %s accepts no input and has an empty sync queue, but not every machine is final or attack", describe(specs, cur.states)),
				Witness: pathTo(nodes, cur.node),
			})
		}
	}

	if !truncated {
		for i, s := range specs {
			reach := s.Reachable()
			var missed []string
			for _, st := range s.States() {
				if s.IsAttack(st) && reach[st] && !attackSeen[i][st] {
					missed = append(missed, string(st))
				}
			}
			sort.Strings(missed)
			for _, st := range missed {
				findings = append(findings, Finding{
					Machine: s.Name, Check: CheckProductAttack,
					Detail: fmt.Sprintf("attack state %q is reachable in the machine's own graph but never entered in the communicating product (depth %d): its δ preconditions can never be met", st, opts.ProductDepth),
					// The witness is the machine-local half of the
					// contradiction: the event path that enters the
					// attack state when the δ inputs are forced, which
					// the product shows no peer ever produces.
					Witness: localWitness(s, core.State(st), opts),
				})
			}
		}
	}
	return findings
}

// checkAmbiguity hunts for same-(state, event) transition groups
// whose guards are simultaneously satisfiable under some probe: the
// paper's Section 4.1 requires competing predicates to be mutually
// disjoint, and core.Machine.Step turns a violation into
// ErrNondeterministic at run time — on a live call, not in CI. The
// witness drives the machine to the ambiguous state and ends with the
// triggering probe as the event's arguments, so replaying it
// reproduces the ErrNondeterministic.
func checkAmbiguity(specs []*core.Spec, opts Options) []Finding {
	probes := make([]map[string]any, 0, len(opts.Probes)+1)
	probes = append(probes, map[string]any{})
	probes = append(probes, opts.Probes...)

	var out []Finding
	for _, s := range specs {
		byKey := make(map[string][]core.Transition)
		var keys []string
		for _, t := range s.Transitions() {
			k := string(t.From) + "\x00" + t.Event
			if _, ok := byKey[k]; !ok {
				keys = append(keys, k)
			}
			byKey[k] = append(byKey[k], t)
		}
		sort.Strings(keys)
		for _, k := range keys {
			group := byKey[k]
			guarded := 0
			for _, t := range group {
				if t.Guard != nil {
					guarded++
				}
			}
			if guarded < 2 {
				continue
			}
			from, event := group[0].From, group[0].Event
			for _, probe := range probes {
				var enabled []core.Transition
				for _, t := range group {
					if t.Guard != nil && guardHolds(t, probe, opts.ProbeGlobals) {
						enabled = append(enabled, t)
					}
				}
				if len(enabled) < 2 {
					continue
				}
				targets := make([]string, len(enabled))
				for i, t := range enabled {
					targets[i] = string(t.To)
				}
				witness := append(localWitness(s, from, opts), WitnessStep{
					Machine: s.Name, Event: event, From: from,
					Args: copyProbe(probe),
				})
				out = append(out, Finding{
					Machine: s.Name, Check: CheckAmbiguous,
					Detail:  fmt.Sprintf("guards of %d transitions from %q on %q (targets %s) are simultaneously satisfiable: Step would return ErrNondeterministic on a live call", len(enabled), from, event, strings.Join(targets, ", ")),
					Witness: witness,
				})
				break // one finding per group is enough
			}
		}
	}
	return out
}

func cloneWith(states []core.State, i int, st core.State) []core.State {
	out := make([]core.State, len(states))
	copy(out, states)
	out[i] = st
	return out
}

func cloneQueue(q []qmsg) []qmsg {
	if len(q) == 0 {
		return nil
	}
	out := make([]qmsg, len(q))
	copy(out, q)
	return out
}

func appendQueue(rest []qmsg, alt emitAlt) []qmsg {
	out := make([]qmsg, 0, len(rest)+len(alt.msgs))
	out = append(out, rest...)
	out = append(out, alt.msgs...)
	return out
}

func allTerminal(specs []*core.Spec, states []core.State) bool {
	for i, s := range specs {
		if !s.IsFinal(states[i]) && !s.IsAttack(states[i]) {
			return false
		}
	}
	return true
}

func describe(specs []*core.Spec, states []core.State) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = fmt.Sprintf("%s=%s", s.Name, states[i])
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
