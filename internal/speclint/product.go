package speclint

import (
	"fmt"
	"sort"
	"strings"

	"vids/internal/core"
)

// maxProductConfigs caps the explored product state space. If the cap
// is hit the exploration is truncated and the (absence-based)
// product-unreachable-attack check is suppressed to avoid false
// positives; deadlocks found up to the cap are still reported.
const maxProductConfigs = 100000

// productTransition is one move of one machine, pre-resolved for
// exploration: the event consumed, the target control state, and the
// discovered emission alternatives of the underlying action.
type productTransition struct {
	event string
	to    core.State
	alts  []emitAlt
}

// config is one product configuration: the control state of every
// machine plus the pending sync queue. Variable vectors are
// deliberately abstracted away (guards are treated as "may be true"),
// so exploration over-approximates per-machine behavior while keeping
// the δ-channel causality exact: a sync event only circulates if some
// transition actually emits it.
type config struct {
	states []core.State
	queue  []qmsg
	depth  int
}

func (c config) key() string {
	var b strings.Builder
	for _, st := range c.states {
		b.WriteString(string(st))
		b.WriteByte(0)
	}
	b.WriteByte(1)
	for _, q := range c.queue {
		b.WriteString(q.target)
		b.WriteByte(0x1f)
		b.WriteString(q.name)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// exploreProduct walks the communicating product breadth-first up to
// opts.ProductDepth external inputs (sync cascades between inputs are
// free) and reports two classes of findings: deadlocked
// configurations, and attack states that are reachable in a machine's
// own graph but never entered in the product — a detection that the
// synchronization contract makes impossible.
func exploreProduct(specs []*core.Spec, em *emissions, opts Options) []Finding {
	idx := make(map[string]int, len(specs))
	for i, s := range specs {
		idx[s.Name] = i
	}
	external := make(map[string]bool, len(opts.ExternalEvents))
	for _, e := range opts.ExternalEvents {
		external[e] = true
	}

	// Pre-resolve each machine's transitions by source state.
	byState := make([]map[core.State][]productTransition, len(specs))
	for i, s := range specs {
		ts := s.Transitions()
		alts := em.alts[s.Name]
		m := make(map[core.State][]productTransition)
		for j, t := range ts {
			m[t.From] = append(m[t.From], productTransition{
				event: t.Event, to: t.To, alts: alts[j],
			})
		}
		byState[i] = m
	}
	isInput := func(event string) bool {
		return external[event] || !strings.HasPrefix(event, opts.SyncPrefix)
	}

	start := config{states: make([]core.State, len(specs))}
	attackSeen := make([]map[core.State]bool, len(specs))
	for i, s := range specs {
		start.states[i] = s.Initial
		attackSeen[i] = make(map[core.State]bool)
	}

	var findings []Finding
	deadlocks := 0
	truncated := false
	visited := map[string]bool{start.key(): true}
	frontier := []config{start}

	note := func(c config) {
		for i, st := range c.states {
			if specs[i].IsAttack(st) {
				attackSeen[i][st] = true
			}
		}
	}
	note(start)

	for len(frontier) > 0 {
		if len(visited) > maxProductConfigs {
			truncated = true
			break
		}
		cur := frontier[0]
		frontier = frontier[1:]

		push := func(next config) {
			k := next.key()
			if visited[k] {
				return
			}
			visited[k] = true
			note(next)
			frontier = append(frontier, next)
		}

		if len(cur.queue) > 0 {
			// Priority rule (paper Section 4.2): pending δ messages
			// are delivered before any further input. Delivery of the
			// head is the only enabled move.
			msg := cur.queue[0]
			rest := cur.queue[1:]
			i, ok := idx[msg.target]
			delivered := false
			if ok {
				for _, t := range byState[i][cur.states[i]] {
					if t.event != msg.name {
						continue
					}
					delivered = true
					for _, alt := range t.alts {
						q := appendQueue(rest, alt)
						if len(q) > opts.MaxQueue {
							continue
						}
						next := config{states: cloneWith(cur.states, i, t.to), queue: q, depth: cur.depth}
						push(next)
					}
				}
			}
			if !delivered {
				// The peer no longer cares (core.System tolerates
				// this) or the target is unknown: the message drops.
				push(config{states: cur.states, queue: cloneQueue(rest), depth: cur.depth})
			}
			continue
		}

		// Queue empty: feed any external input to any machine.
		moved := false
		if cur.depth < opts.ProductDepth {
			for i := range specs {
				for _, t := range byState[i][cur.states[i]] {
					if !isInput(t.event) {
						continue
					}
					moved = true
					for _, alt := range t.alts {
						if len(alt) > opts.MaxQueue {
							continue
						}
						next := config{
							states: cloneWith(cur.states, i, t.to),
							queue:  cloneQueue(alt),
							depth:  cur.depth + 1,
						}
						push(next)
					}
				}
			}
		} else {
			continue // depth bound reached: neither expand nor judge
		}

		if !moved && !allTerminal(specs, cur.states) && deadlocks < 5 {
			deadlocks++
			findings = append(findings, Finding{
				Machine: "system", Check: CheckDeadlock,
				Detail: fmt.Sprintf("configuration %s accepts no input and has an empty sync queue, but not every machine is final or attack", describe(specs, cur.states)),
			})
		}
	}

	if !truncated {
		for i, s := range specs {
			reach := s.Reachable()
			var missed []string
			for _, st := range s.States() {
				if s.IsAttack(st) && reach[st] && !attackSeen[i][st] {
					missed = append(missed, string(st))
				}
			}
			sort.Strings(missed)
			for _, st := range missed {
				findings = append(findings, Finding{
					Machine: s.Name, Check: CheckProductAttack,
					Detail: fmt.Sprintf("attack state %q is reachable in the machine's own graph but never entered in the communicating product (depth %d): its δ preconditions can never be met", st, opts.ProductDepth),
				})
			}
		}
	}
	return findings
}

func cloneWith(states []core.State, i int, st core.State) []core.State {
	out := make([]core.State, len(states))
	copy(out, states)
	out[i] = st
	return out
}

func cloneQueue(q []qmsg) []qmsg {
	if len(q) == 0 {
		return nil
	}
	out := make([]qmsg, len(q))
	copy(out, q)
	return out
}

func appendQueue(rest []qmsg, alt emitAlt) []qmsg {
	out := make([]qmsg, 0, len(rest)+len(alt))
	out = append(out, rest...)
	out = append(out, alt...)
	return out
}

func allTerminal(specs []*core.Spec, states []core.State) bool {
	for i, s := range specs {
		if !s.IsFinal(states[i]) && !s.IsAttack(states[i]) {
			return false
		}
	}
	return true
}

func describe(specs []*core.Spec, states []core.State) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = fmt.Sprintf("%s=%s", s.Name, states[i])
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
