package speclint

import (
	"errors"
	"strings"
	"testing"

	"vids/internal/core"
)

// --- Witness reproduction: every product finding must replay --------------

func TestDeadlockWitnessReplays(t *testing.T) {
	// Same fixture as TestProductDeadlock: after "go", machine a waits
	// forever for a δ nobody sends while b accepts nothing.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, nil, "S1")
	a.On("S1", "delta.x", nil, nil, "S2")
	a.Final("S2")
	b := core.NewSpec("b", "T0")
	specs := []*core.Spec{a, b}
	opts := DefaultOptions()

	fs := findingsFor(LintSystem(specs, opts), CheckDeadlock)
	if len(fs) != 1 {
		t.Fatalf("deadlock findings: %v", fs)
	}
	w := fs[0].Witness
	if len(w) == 0 {
		t.Fatalf("deadlock finding has no witness: %v", fs[0])
	}

	sys, err := ReplayWitness(specs, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	ma, _ := sys.Machine("a")
	mb, _ := sys.Machine("b")
	if ma.State() != "S1" || mb.State() != "T0" {
		t.Fatalf("replay ended in (a=%s, b=%s), want the deadlocked (a=S1, b=T0)", ma.State(), mb.State())
	}
	// The deadlock reproduced: empty queue, not every machine terminal.
	if sys.PendingSync() != 0 {
		t.Fatalf("replay left %d pending sync messages", sys.PendingSync())
	}
	if ma.InFinal() || ma.InAttack() {
		t.Fatalf("machine a terminal after replay: the configuration would be legitimate")
	}
}

func TestUnreachableAttackWitnessReplays(t *testing.T) {
	// Same fixture as TestProductUnreachableAttack. The witness is the
	// machine-local half of the contradiction: forcing the δ input
	// drives a into ATTACK, which the product proves no peer triggers.
	a := core.NewSpec("a", "S0")
	a.On("S0", "a.data", nil, nil, "S0")
	a.On("S0", "delta.go", nil, nil, "ATTACK")
	a.On("ATTACK", "a.data", nil, nil, "ATTACK")
	a.Final("S0")
	a.Attack("ATTACK")
	specs := []*core.Spec{a, loopSpec("b")}
	opts := DefaultOptions()

	fs := findingsFor(LintSystem(specs, opts), CheckProductAttack)
	if len(fs) != 1 {
		t.Fatalf("product-attack findings: %v", fs)
	}
	w := fs[0].Witness
	if len(w) == 0 {
		t.Fatalf("product-attack finding has no witness: %v", fs[0])
	}

	sys, err := ReplayWitness(specs, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	ma, _ := sys.Machine("a")
	if ma.State() != "ATTACK" || !ma.InAttack() {
		t.Fatalf("replay ended with a=%s, want ATTACK", ma.State())
	}
}

func TestQueueBoundWitnessReplaysOnInput(t *testing.T) {
	// One data event floods the δ channel past the bound: the
	// external-input branch of the exploration must flag it.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		for i := 0; i < 3; i++ {
			c.Emit("b", core.Event{Name: "delta.x"})
		}
	}, "S0")
	a.Final("S0")
	b := core.NewSpec("b", "T0")
	b.On("T0", "delta.x", nil, nil, "T0")
	b.Final("T0")
	specs := []*core.Spec{a, b}
	opts := DefaultOptions()
	opts.MaxQueue = 2

	fs := findingsFor(LintSystem(specs, opts), CheckQueueBound)
	if len(fs) != 1 {
		t.Fatalf("queue-bound findings: %v", fs)
	}
	if !strings.Contains(fs[0].Detail, "bound 2") {
		t.Fatalf("finding does not name the bound: %v", fs[0])
	}
	w := fs[0].Witness
	if len(w) == 0 {
		t.Fatalf("queue-bound finding has no witness: %v", fs[0])
	}

	sys, err := ReplayWitness(specs, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := sys.MaxPendingSync(); got <= opts.MaxQueue {
		t.Fatalf("replay high-water mark %d does not exceed the bound %d", got, opts.MaxQueue)
	}
}

func TestQueueBoundWitnessReplaysOnSyncCascade(t *testing.T) {
	// The overflow only materializes while draining: a's input emits
	// two δs, and consuming the first makes b emit two more behind the
	// one still queued.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		c.Emit("b", core.Event{Name: "delta.x"})
		c.Emit("b", core.Event{Name: "delta.x"})
	}, "S0")
	a.On("S0", "delta.y", nil, nil, "S0")
	a.Final("S0")
	b := core.NewSpec("b", "T0")
	b.On("T0", "delta.x", nil, func(c *core.Ctx) {
		c.Emit("a", core.Event{Name: "delta.y"})
		c.Emit("a", core.Event{Name: "delta.y"})
	}, "T0")
	b.Final("T0")
	specs := []*core.Spec{a, b}
	opts := DefaultOptions()
	opts.MaxQueue = 2

	fs := findingsFor(LintSystem(specs, opts), CheckQueueBound)
	if len(fs) == 0 {
		t.Fatalf("cascade overflow not flagged: %v", LintSystem(specs, opts))
	}
	w := fs[0].Witness
	if len(w) == 0 {
		t.Fatalf("queue-bound finding has no witness: %v", fs[0])
	}
	if !w[len(w)-1].Sync {
		t.Fatalf("cascade witness should end on a sync delivery: %v", w)
	}

	sys, err := ReplayWitness(specs, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := sys.MaxPendingSync(); got <= opts.MaxQueue {
		t.Fatalf("replay high-water mark %d does not exceed the bound %d", got, opts.MaxQueue)
	}
}

func TestAmbiguousTransitionWitnessReplays(t *testing.T) {
	// Two guards on (S1, "e") overlap at x=1: Section 4.1's mutual
	// disjointness is violated and Step must refuse at run time.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, nil, "S1")
	a.On("S1", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") > 0 }, nil, "S2")
	a.On("S1", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") < 10 }, nil, "S3")
	a.Final("S2", "S3")
	specs := []*core.Spec{a, loopSpec("b")}
	opts := DefaultOptions()
	opts.Probes = []map[string]any{{"x": 1}}

	fs := findingsFor(LintSystem(specs, opts), CheckAmbiguous)
	if len(fs) != 1 {
		t.Fatalf("ambiguity findings: %v", LintSystem(specs, opts))
	}
	if !strings.Contains(fs[0].Detail, "S2") || !strings.Contains(fs[0].Detail, "S3") {
		t.Fatalf("finding does not name the competing targets: %v", fs[0])
	}
	w := fs[0].Witness
	if len(w) < 2 {
		t.Fatalf("ambiguity witness should include the path to S1 plus the trigger: %v", w)
	}

	_, err := ReplayWitness(specs, w, opts)
	if !errors.Is(err, core.ErrNondeterministic) {
		t.Fatalf("replay error = %v, want ErrNondeterministic", err)
	}
}

func TestDisjointGuardsAreNotAmbiguous(t *testing.T) {
	a := core.NewSpec("a", "S0")
	a.On("S0", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") > 0 }, nil, "S1")
	a.On("S0", "e", func(c *core.Ctx) bool { return c.Event.IntArg("x") <= 0 }, nil, "S2")
	a.Final("S1", "S2")
	opts := DefaultOptions()
	opts.Probes = []map[string]any{{"x": 1}, {"x": -1}}

	fs := findingsFor(LintSystem([]*core.Spec{a, loopSpec("b")}, opts), CheckAmbiguous)
	if len(fs) != 0 {
		t.Fatalf("disjoint guards flagged as ambiguous: %v", fs)
	}
}

// --- runRecording / guardHolds edge cases ---------------------------------

func TestRunRecordingPanickingAction(t *testing.T) {
	tr := core.Transition{Event: "e", Do: func(c *core.Ctx) {
		c.Emit("b", core.Event{Name: "delta.before-panic"})
		panic("action exploded")
	}}
	if msgs := runRecording(tr, map[string]any{"x": 1}, nil); msgs != nil {
		t.Fatalf("panicking action leaked emissions: %v", msgs)
	}
}

func TestRunRecordingUndeclaredGlobalsReadAsZero(t *testing.T) {
	// Probing runs against scratch stores: a global the options never
	// declared reads back as its zero value, and the action branch
	// gated on it behaves accordingly instead of crashing.
	tr := core.Transition{Event: "e", Do: func(c *core.Ctx) {
		if c.Globals.GetString("g.undeclared") == "" && c.Globals.GetInt("g.also-missing") == 0 {
			c.Emit("b", core.Event{Name: "delta.zero"})
		}
	}}
	msgs := runRecording(tr, nil, nil)
	if len(msgs) != 1 || msgs[0].Event.Name != "delta.zero" {
		t.Fatalf("undeclared-global read did not take the zero branch: %v", msgs)
	}
}

func TestGuardHoldsPanickingGuard(t *testing.T) {
	tr := core.Transition{Event: "e", Guard: func(c *core.Ctx) bool {
		var m map[string]int
		m["boom"] = 1 // nil-map write panics
		return true
	}}
	if guardHolds(tr, nil, nil) {
		t.Fatal("panicking guard counted as satisfied")
	}
}

func TestGuardHoldsNilGuardAndProbeArgs(t *testing.T) {
	if !guardHolds(core.Transition{Event: "e"}, nil, nil) {
		t.Fatal("nil guard must always hold")
	}
	tr := core.Transition{Event: "e", Guard: func(c *core.Ctx) bool {
		return c.Event.StringArg("who") == "caller" && c.Globals.GetString("g.who") == "callee"
	}}
	if guardHolds(tr, map[string]any{"who": "caller"}, nil) {
		t.Fatal("guard held without the global it requires")
	}
	if !guardHolds(tr, map[string]any{"who": "caller"}, map[string]any{"g.who": "callee"}) {
		t.Fatal("guard rejected a satisfying probe")
	}
}

func TestDiscoverEmissionsPerProbeAlternatives(t *testing.T) {
	// The action takes a different branch per probe; discovery must
	// record each distinct emission sequence as its own alternative,
	// remembering the probe that produced it.
	a := core.NewSpec("a", "S0")
	a.On("S0", "go", nil, func(c *core.Ctx) {
		if c.Event.StringArg("sdpAddr") != "" {
			c.Emit("b", core.Event{Name: "delta.open"})
			c.Emit("b", core.Event{Name: "delta.open"})
		} else {
			c.Emit("b", core.Event{Name: "delta.plain"})
		}
	}, "S0")
	a.Final("S0")
	opts := DefaultOptions()

	em := discoverEmissions([]*core.Spec{a}, opts)
	ts := a.Transitions()
	if len(ts) != 1 {
		t.Fatalf("transitions = %d", len(ts))
	}
	alts := em.alts["a"][0]
	if len(alts) != 2 {
		t.Fatalf("alternatives = %d, want 2 (one per branch): %+v", len(alts), alts)
	}
	kinds := map[string]map[string]any{} // first emitted event -> producing probe
	for _, alt := range alts {
		if len(alt.msgs) == 0 {
			t.Fatalf("empty alternative recorded: %+v", alts)
		}
		kinds[alt.msgs[0].name] = alt.probe
	}
	if p := kinds["delta.plain"]; len(p) != 0 {
		t.Fatalf("plain branch should come from the all-zero probe, got %v", p)
	}
	if p := kinds["delta.open"]; p["sdpAddr"] == "" || p["sdpAddr"] == nil {
		t.Fatalf("open branch probe lacks sdpAddr: %v", p)
	}
}

func TestLocalWitnessChoosesSatisfiableEdges(t *testing.T) {
	// Two routes to DONE: a guarded edge no probe satisfies and a
	// longer unguarded detour. The witness must prefer the replayable
	// detour.
	s := core.NewSpec("a", "S0")
	s.On("S0", "shortcut", func(c *core.Ctx) bool { return c.Event.IntArg("x") == 424242 }, nil, "DONE")
	s.On("S0", "hop", nil, nil, "MID")
	s.On("MID", "hop", nil, nil, "DONE")
	s.Final("DONE")
	opts := DefaultOptions()

	w := localWitness(s, "DONE", opts)
	if len(w) != 2 || w[0].Event != "hop" || w[1].Event != "hop" {
		t.Fatalf("witness took an unsatisfiable edge: %v", w)
	}
	sys, err := ReplayWitness([]*core.Spec{s}, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	m, _ := sys.Machine("a")
	if m.State() != "DONE" {
		t.Fatalf("replay ended in %s, want DONE", m.State())
	}
}
