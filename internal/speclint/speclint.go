// Package speclint statically verifies the EFSM specifications that
// carry vids' detection power. A specification-based IDS (paper
// Section 4) detects exactly what its specs describe: a mistyped
// synchronization event name, an unreachable attack state, or a
// transition shadowed by a catch-all silently becomes a missed
// detection. speclint analyzes one core.Spec at a time (LintSpec) and
// the assembled communicating system (LintSystem):
//
//   - per-machine graph checks beyond reachability: livelock sinks
//     with no path to any final or attack state, transitions made
//     redundant by a catch-all sibling, states declared but never
//     targeted;
//   - δ-channel contract checks: each transition's emitted sync
//     events are discovered by executing its Action against a
//     recording core.Ctx, then matched against the consuming
//     transitions of the target machine (and vice versa);
//   - bounded exploration of the communicating product (control
//     states × sync-queue contents): deadlocked configurations, and
//     attack states reachable per-machine but never entered in the
//     product — a synchronization contract that can never fire.
//
// Findings are diagnostics, not errors: cmd/fsmdump turns a non-empty
// finding list into a nonzero exit for CI.
package speclint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vids/internal/core"
)

// Check identifiers, stable for tooling and tests.
const (
	CheckValidate       = "validate"
	CheckUnreachable    = "unreachable"
	CheckLivelock       = "livelock"
	CheckShadowed       = "shadowed-transition"
	CheckNeverTargeted  = "never-targeted"
	CheckDuplicateName  = "duplicate-machine"
	CheckUnknownTarget  = "unknown-delta-target"
	CheckOrphanEmitter  = "orphan-delta-emitter"
	CheckOrphanConsumer = "orphan-delta-consumer"
	CheckDeadlock       = "product-deadlock"
	CheckProductAttack  = "product-unreachable-attack"
	CheckQueueBound     = "delta-queue-bound"
	CheckAmbiguous      = "ambiguous-transition"
)

// Finding is one diagnostic produced by the linter.
type Finding struct {
	Machine string // spec name, or "system" for cross-machine findings
	Check   string // one of the Check* identifiers
	Detail  string

	// Witness, when the check derives one, is the concrete event
	// sequence that leads to the finding: a counterexample rather than
	// a bare verdict. ReplayWitness can execute it against a fresh
	// core.System to reproduce the finding for real.
	Witness []WitnessStep
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Machine, f.Check, f.Detail)
}

// Options parameterize system-level linting.
type Options struct {
	// Probes are synthetic event-argument vectors. Every transition
	// Action is executed once per probe (plus once with no arguments)
	// against a recording core.Ctx, and the union of observed δ
	// emissions over all probes is taken as the transition's emission
	// set. Conditional emissions are discovered as long as some probe
	// satisfies the condition, so probes should carry plausible
	// non-zero values for every argument key the specs inspect.
	Probes []map[string]any

	// ProbeGlobals seeds the shared variable store for each probe run.
	ProbeGlobals map[string]any

	// SyncPrefix marks event names that arrive only on the δ
	// synchronization channel. Transitions on such events are
	// consumers and must have a matching emitter among their peers.
	SyncPrefix string

	// ExternalEvents are event names injected from outside the
	// communicating system (e.g. IDS-scheduled timers via
	// DeliverSync). They are exempt from the orphan-consumer check
	// and treated as spontaneous inputs during product exploration.
	ExternalEvents []string

	// ProductDepth bounds the number of external input events fed to
	// the system during product exploration. Sync cascades between
	// inputs do not count against the bound.
	ProductDepth int

	// MaxQueue bounds the sync-queue length during product
	// exploration; configurations that would exceed it are pruned.
	MaxQueue int
}

// DefaultOptions returns options calibrated for the repo's SIP/RTP
// specifications: one all-zero probe plus one probe carrying
// plausible values for every event-argument key the specs read.
func DefaultOptions() Options {
	return Options{
		Probes: []map[string]any{{
			// SIP dialog identity and transport provenance.
			"callID": "lint-call", "from": "sip:a@example.com", "to": "sip:b@example.com",
			"fromTag": "lint-from", "toTag": "lint-to",
			"src": "lint-src", "contact": "lint-contact", "dest": "b@example.com",
			// Response classification.
			"status": 200, "cseqMethod": "INVITE",
			// SDP media offer/answer.
			"sdpAddr": "198.51.100.1", "sdpPort": 49170, "sdpPayload": 0,
			// δ open payload and RTP stream attributes.
			"party": "caller", "payloadType": 0,
			"seq": 1, "ts": uint32(1), "ssrc": uint32(1), "now": time.Duration(0),
		}},
		ProbeGlobals: map[string]any{
			"g.payload": 0, "g.byeSender": "caller",
		},
		SyncPrefix:     "delta.",
		ExternalEvents: []string{"timer.T", "timer.T1"},
		ProductDepth:   16,
		MaxQueue:       6,
	}
}

// LintSpec runs every single-machine check against one specification.
func LintSpec(s *core.Spec) []Finding {
	var out []Finding
	if err := s.Validate(); err != nil {
		out = append(out, Finding{Machine: s.Name, Check: CheckValidate, Detail: err.Error()})
	}

	reach := s.Reachable()
	for _, st := range s.States() {
		if !reach[st] {
			out = append(out, Finding{
				Machine: s.Name, Check: CheckUnreachable,
				Detail: fmt.Sprintf("state %q is unreachable from %q", st, s.Initial),
			})
		}
	}

	ts := s.Transitions()

	// Livelock: a state that is neither final nor attack and from
	// which no final or attack state can be reached traps the machine
	// (and its fact-base entry) forever: it can neither be evicted
	// nor raise an alert. Unreachable states are already reported.
	next := make(map[core.State][]core.State)
	incoming := make(map[core.State]int)
	for _, t := range ts {
		next[t.From] = append(next[t.From], t.To)
		incoming[t.To]++
	}
	terminalOK := canReachTerminal(s, next)
	for _, st := range s.States() {
		if !reach[st] || s.IsFinal(st) || s.IsAttack(st) {
			continue
		}
		if !terminalOK[st] {
			out = append(out, Finding{
				Machine: s.Name, Check: CheckLivelock,
				Detail: fmt.Sprintf("state %q has no path to any final or attack state: the machine can never be evicted or alert once here", st),
			})
		}
	}

	// Never-targeted: a declared non-initial state with no incoming
	// transition. Always also unreachable, but the distinct message
	// points at the likely cause (a From/To swap or a missing edge).
	for _, st := range s.States() {
		if st == s.Initial || incoming[st] > 0 {
			continue
		}
		out = append(out, Finding{
			Machine: s.Name, Check: CheckNeverTargeted,
			Detail: fmt.Sprintf("state %q is never the target of a transition", st),
		})
	}

	// Shadowed transitions: a guarded transition whose observable
	// outcome (target, action, label) is identical to a catch-all
	// sibling on the same (from, event) adds a guard that changes
	// nothing — usually a leftover from a refactor, sometimes a guard
	// attached to the wrong transition.
	byKey := make(map[string][]core.Transition)
	for _, t := range ts {
		k := string(t.From) + "\x00" + t.Event
		byKey[k] = append(byKey[k], t)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := byKey[k]
		var catchAll *core.Transition
		for i := range group {
			if group[i].Guard == nil {
				catchAll = &group[i]
			}
		}
		if catchAll == nil || catchAll.Do != nil {
			continue
		}
		for i := range group {
			t := &group[i]
			if t.Guard == nil || t.Do != nil {
				continue
			}
			if t.To == catchAll.To && t.Label == catchAll.Label {
				out = append(out, Finding{
					Machine: s.Name, Check: CheckShadowed,
					Detail: fmt.Sprintf("guarded transition %q -%s-> %q duplicates the catch-all on the same event: the guard has no effect", t.From, t.Event, t.To),
				})
			}
		}
	}
	return out
}

// canReachTerminal computes, for every state, whether some final or
// attack state is reachable from it (including the state itself).
func canReachTerminal(s *core.Spec, next map[core.State][]core.State) map[core.State]bool {
	// Reverse BFS from the terminal set.
	prev := make(map[core.State][]core.State)
	for from, tos := range next {
		for _, to := range tos {
			prev[to] = append(prev[to], from)
		}
	}
	ok := make(map[core.State]bool)
	var frontier []core.State
	for _, st := range s.States() {
		if s.IsFinal(st) || s.IsAttack(st) {
			ok[st] = true
			frontier = append(frontier, st)
		}
	}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, p := range prev[cur] {
			if !ok[p] {
				ok[p] = true
				frontier = append(frontier, p)
			}
		}
	}
	return ok
}

// LintSystem checks the δ-synchronization contract of a set of
// communicating specifications and explores their bounded product.
// Pass the specs exactly as they are assembled into one core.System
// (for vids: the SIP machine plus both RTP direction machines).
func LintSystem(specs []*core.Spec, opts Options) []Finding {
	if opts.SyncPrefix == "" {
		opts.SyncPrefix = "delta."
	}
	if opts.ProductDepth <= 0 {
		opts.ProductDepth = 16
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 6
	}

	var out []Finding
	byName := make(map[string]*core.Spec, len(specs))
	for _, s := range specs {
		if _, dup := byName[s.Name]; dup {
			out = append(out, Finding{
				Machine: "system", Check: CheckDuplicateName,
				Detail: fmt.Sprintf("machine name %q used by more than one spec", s.Name),
			})
			continue
		}
		byName[s.Name] = s
	}

	em := discoverEmissions(specs, opts)

	// Orphan emitters: a discovered δ emission whose target machine
	// does not exist, or exists but has no transition consuming the
	// event — the message would be dropped on the floor at run time.
	consumes := make(map[string]map[string]bool) // machine -> event -> consumed
	for _, s := range specs {
		evs := make(map[string]bool)
		for _, t := range s.Transitions() {
			evs[t.Event] = true
		}
		consumes[s.Name] = evs
	}
	for _, e := range em.all() {
		if _, ok := byName[e.target]; !ok {
			out = append(out, Finding{
				Machine: e.source, Check: CheckUnknownTarget,
				Detail: fmt.Sprintf("transition %q -%s-> %q emits %q to machine %q, which is not part of the system", e.from, e.event, e.to, e.name, e.target),
			})
			continue
		}
		if !consumes[e.target][e.name] {
			out = append(out, Finding{
				Machine: e.source, Check: CheckOrphanEmitter,
				Detail: fmt.Sprintf("δ event %q emitted to %q (by %q -%s-> %q) is never consumed by any of its transitions", e.name, e.target, e.from, e.event, e.to),
			})
		}
	}

	// Orphan consumers: a transition waiting on a sync-channel event
	// that no peer ever emits toward this machine can never fire.
	external := make(map[string]bool, len(opts.ExternalEvents))
	for _, e := range opts.ExternalEvents {
		external[e] = true
	}
	for _, s := range specs {
		seen := make(map[string]bool)
		for _, t := range s.Transitions() {
			if !strings.HasPrefix(t.Event, opts.SyncPrefix) || external[t.Event] || seen[t.Event] {
				continue
			}
			seen[t.Event] = true
			if !em.emittedTo(s.Name, t.Event) {
				out = append(out, Finding{
					Machine: s.Name, Check: CheckOrphanConsumer,
					Detail: fmt.Sprintf("transitions on δ event %q can never fire: no peer machine emits it to %q", t.Event, s.Name),
				})
			}
		}
	}

	out = append(out, checkAmbiguity(specs, opts)...)
	out = append(out, exploreProduct(specs, em, opts, nil)...)
	return out
}

// LintAll is the convenience entry point used by cmd/fsmdump: it
// lints every spec individually and the communicating subset (the
// first systemSize specs) as a product.
func LintAll(specs []*core.Spec, systemSize int, opts Options) []Finding {
	var out []Finding
	for _, s := range specs {
		out = append(out, LintSpec(s)...)
	}
	if systemSize > len(specs) {
		systemSize = len(specs)
	}
	if systemSize > 1 {
		out = append(out, LintSystem(specs[:systemSize], opts)...)
	}
	return out
}
