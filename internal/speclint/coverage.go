package speclint

import (
	"sort"

	"vids/internal/core"
)

// TransitionKey identifies one spec transition for coverage
// accounting: exactly the tuple core.Machine.Step reports to a
// core.CoverageObserver when the transition fires, so runtime
// observations and static reachability share one key space.
type TransitionKey struct {
	Machine string     `json:"machine"`
	From    core.State `json:"from"`
	Event   string     `json:"event"`
	To      core.State `json:"to"`
	Label   string     `json:"label,omitempty"`
}

// AllTransitions returns every declared transition of every spec,
// sorted by (machine, from, event, to, label): the coverage universe
// cmd/speccover measures against.
func AllTransitions(specs []*core.Spec) []TransitionKey {
	var out []TransitionKey
	for _, s := range specs {
		for _, t := range s.Transitions() {
			out = append(out, TransitionKey{
				Machine: s.Name, From: t.From, Event: t.Event, To: t.To, Label: t.Label,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Less orders keys lexicographically over (machine, from, event, to,
// label).
func (k TransitionKey) Less(o TransitionKey) bool {
	if k.Machine != o.Machine {
		return k.Machine < o.Machine
	}
	if k.From != o.From {
		return k.From < o.From
	}
	if k.Event != o.Event {
		return k.Event < o.Event
	}
	if k.To != o.To {
		return k.To < o.To
	}
	return k.Label < o.Label
}

// ReachableTransitions computes the statically reachable transition
// set. The first systemSize specs are the communicating product
// (for vids: SIP plus both RTP directions); their reachable set is
// exactly the transitions the bounded product exploration fires, so
// δ-causality is honored — a sync-consuming transition counts only if
// some peer concretely emits the event. The remaining specs run
// standalone; for those a transition is reachable iff its source
// state is reachable in the machine's own graph.
func ReachableTransitions(specs []*core.Spec, systemSize int, opts Options) map[TransitionKey]bool {
	if opts.SyncPrefix == "" {
		opts.SyncPrefix = "delta."
	}
	if opts.ProductDepth <= 0 {
		opts.ProductDepth = 16
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 6
	}
	if systemSize > len(specs) {
		systemSize = len(specs)
	}
	fired := make(map[TransitionKey]bool)
	if systemSize > 1 {
		prod := specs[:systemSize]
		em := discoverEmissions(prod, opts)
		exploreProduct(prod, em, opts, fired)
	} else if systemSize == 1 {
		markGraphReachable(specs[0], fired)
	}
	for _, s := range specs[systemSize:] {
		markGraphReachable(s, fired)
	}
	return fired
}

func markGraphReachable(s *core.Spec, fired map[TransitionKey]bool) {
	reach := s.Reachable()
	for _, t := range s.Transitions() {
		if reach[t.From] {
			fired[TransitionKey{Machine: s.Name, From: t.From, Event: t.Event, To: t.To, Label: t.Label}] = true
		}
	}
}
