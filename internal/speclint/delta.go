package speclint

import (
	"sort"

	"vids/internal/core"
)

// emission is one discovered δ message: spec source's transition
// (from, event, to) was observed emitting event name to machine
// target under at least one probe.
type emission struct {
	source string
	from   core.State
	event  string
	to     core.State
	name   string
	target string
}

// emitAlt is one distinct emission sequence a transition was observed
// producing (different probes can exercise different branches of the
// action, so one transition can have several alternatives — including
// the empty one). probe remembers the argument vector that first
// produced the sequence, so witness paths can replay the same branch.
type emitAlt struct {
	msgs  []qmsg
	probe map[string]any
}

// qmsg is a queued δ message reduced to what product exploration
// needs: where it goes and what it is called.
type qmsg struct {
	target string
	name   string
}

// emissions indexes everything discovery learned about the system's
// δ traffic.
type emissions struct {
	// alts[specName][i] holds the distinct emission sequences of the
	// i-th transition of that spec, parallel to Spec.Transitions().
	alts map[string][]([]emitAlt)
	// toMachine["machine\x00event"] records that some peer emits
	// event toward machine.
	toMachine map[string]bool
	flat      []emission
}

func (em *emissions) all() []emission { return em.flat }

func (em *emissions) emittedTo(machine, event string) bool {
	return em.toMachine[machine+"\x00"+event]
}

// discoverEmissions executes every transition Action against a
// recording core.Ctx, once per probe, and collects the δ messages it
// queues. Guards are never evaluated and actions run against
// synthetic state, so this is dynamic probing of statically known
// code paths: an emission is discovered iff some probe drives the
// action through its Emit call. Actions are assumed (per the paper's
// A_t(v) contract) to touch only the Ctx they are handed, so running
// them against scratch stores is safe; a panicking action is
// tolerated and simply contributes no emissions for that probe.
func discoverEmissions(specs []*core.Spec, opts Options) *emissions {
	em := &emissions{
		alts:      make(map[string][]([]emitAlt)),
		toMachine: make(map[string]bool),
	}
	probes := make([]map[string]any, 0, len(opts.Probes)+1)
	probes = append(probes, map[string]any{}) // the all-zero probe
	probes = append(probes, opts.Probes...)

	for _, s := range specs {
		ts := s.Transitions()
		perSpec := make([]([]emitAlt), len(ts))
		for i, t := range ts {
			if t.Do == nil {
				perSpec[i] = []emitAlt{{}}
				continue
			}
			seen := make(map[string]bool)
			for _, probe := range probes {
				msgs := runRecording(t, probe, opts.ProbeGlobals)
				alt := emitAlt{msgs: make([]qmsg, 0, len(msgs)), probe: probe}
				for _, m := range msgs {
					alt.msgs = append(alt.msgs, qmsg{target: m.Target, name: m.Event.Name})
				}
				key := altKey(alt)
				if seen[key] {
					continue
				}
				seen[key] = true
				perSpec[i] = append(perSpec[i], alt)
				for _, q := range alt.msgs {
					em.toMachine[q.target+"\x00"+q.name] = true
					em.flat = append(em.flat, emission{
						source: s.Name, from: t.From, event: t.Event, to: t.To,
						name: q.name, target: q.target,
					})
				}
			}
		}
		em.alts[s.Name] = perSpec
	}

	// Deduplicate and order the flat list for stable findings.
	sort.Slice(em.flat, func(i, j int) bool {
		a, b := em.flat[i], em.flat[j]
		if a.source != b.source {
			return a.source < b.source
		}
		if a.from != b.from {
			return a.from < b.from
		}
		if a.event != b.event {
			return a.event < b.event
		}
		if a.target != b.target {
			return a.target < b.target
		}
		return a.name < b.name
	})
	dedup := em.flat[:0]
	for i, e := range em.flat {
		if i == 0 || e != em.flat[i-1] {
			dedup = append(dedup, e)
		}
	}
	em.flat = dedup
	return em
}

// runRecording executes one transition's action against a recording
// context seeded with the probe's event arguments and globals.
func runRecording(t core.Transition, probe map[string]any, globals map[string]any) (msgs []core.SyncMsg) {
	defer func() {
		if recover() != nil {
			msgs = nil
		}
	}()
	ctx := recordingCtx(t.Event, probe, globals)
	t.Do(ctx)
	return ctx.Emitted()
}

// guardHolds evaluates one transition's guard against a recording
// context. A nil guard always holds; a panicking guard (reading
// arguments the probe does not carry in ways that trip it) counts as
// unsatisfied.
func guardHolds(t core.Transition, probe map[string]any, globals map[string]any) (ok bool) {
	if t.Guard == nil {
		return true
	}
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return t.Guard(recordingCtx(t.Event, probe, globals))
}

// recordingCtx builds the synthetic evaluation context probing runs
// against: the probe as event arguments, fresh local variables, and a
// globals store seeded from the options.
func recordingCtx(event string, probe map[string]any, globals map[string]any) *core.Ctx {
	args := make(map[string]any, len(probe))
	for k, v := range probe {
		args[k] = v
	}
	g := make(core.Vars, len(globals))
	for k, v := range globals {
		g.Set(k, v)
	}
	return &core.Ctx{
		Event:   core.Event{Name: event, Args: args},
		Vars:    make(core.Vars),
		Globals: g,
	}
}

func altKey(alt emitAlt) string {
	key := ""
	for _, q := range alt.msgs {
		key += q.target + "\x1f" + q.name + "\x1e"
	}
	return key
}
