package speclint

import (
	"fmt"
	"strings"

	"vids/internal/core"
)

// WitnessEmit is one δ message a witness step queues.
type WitnessEmit struct {
	Target string `json:"target"`
	Event  string `json:"event"`
}

// WitnessStep is one step of a witness path: a concrete event fed to
// (or delivered inside) the communicating system. A sequence of steps
// reconstructs how the product exploration reached a finding, and
// ReplayWitness can drive a fresh core.System along it to reproduce
// the finding for real.
//
// Steps with Sync set are δ-queue deliveries the system performs by
// itself (including Dropped messages nobody consumes): they document
// the causality but are skipped during replay. Steps without Sync are
// injected inputs — wire events via System.Deliver, timer/sync events
// via System.DeliverSync — carrying the probe Args under which the
// exploration chose the transition.
type WitnessStep struct {
	Machine string         `json:"machine"`
	Event   string         `json:"event"`
	Sync    bool           `json:"sync,omitempty"`
	Dropped bool           `json:"dropped,omitempty"`
	From    core.State     `json:"from,omitempty"`
	To      core.State     `json:"to,omitempty"`
	Label   string         `json:"label,omitempty"`
	Args    map[string]any `json:"args,omitempty"`
	Emits   []WitnessEmit  `json:"emits,omitempty"`
}

func (w WitnessStep) String() string {
	var b strings.Builder
	switch {
	case w.Dropped:
		fmt.Fprintf(&b, "δ %s→%s dropped (no consumer)", w.Event, w.Machine)
	case w.Sync:
		fmt.Fprintf(&b, "δ %s→%s: %s→%s", w.Event, w.Machine, w.From, w.To)
	default:
		fmt.Fprintf(&b, "%s(%s): %s→%s", w.Machine, w.Event, w.From, w.To)
	}
	for _, e := range w.Emits {
		fmt.Fprintf(&b, " !%s→%s", e.Event, e.Target)
	}
	return b.String()
}

// FormatWitness renders a witness path as one arrow-joined line.
func FormatWitness(steps []WitnessStep) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, " ; ")
}

// ReplayWitness assembles a fresh core.System from specs and drives
// it along the witness path, so a static finding can be confirmed
// against the real execution semantics. Sync-delivery steps (Sync or
// Dropped set) are skipped — the System's own FIFO drain performs
// them — while injected steps are fed via Deliver, or DeliverSync for
// timer/sync-channel events that bypass the wire.
//
// The system is returned even when a step errors, so callers can
// inspect the configuration the error left behind. An
// ErrNondeterministic from the final step is the expected reproduction
// of an ambiguous-transition finding; callers asserting deadlocks or
// queue-bound violations should expect a nil error and then examine
// the machine states, PendingSync and MaxPendingSync.
func ReplayWitness(specs []*core.Spec, witness []WitnessStep, opts Options) (*core.System, error) {
	if opts.SyncPrefix == "" {
		opts.SyncPrefix = "delta."
	}
	external := make(map[string]bool, len(opts.ExternalEvents))
	for _, e := range opts.ExternalEvents {
		external[e] = true
	}
	sys := core.NewSystem()
	for _, s := range specs {
		if _, err := sys.Add(s); err != nil {
			return sys, err
		}
	}
	for _, step := range witness {
		if step.Sync || step.Dropped {
			continue
		}
		ev := core.Event{Name: step.Event, Args: step.Args}
		var err error
		if external[step.Event] || strings.HasPrefix(step.Event, opts.SyncPrefix) {
			_, err = sys.DeliverSync(step.Machine, ev)
		} else {
			_, err = sys.Deliver(step.Machine, ev)
		}
		if err != nil {
			return sys, fmt.Errorf("speclint: witness step %s: %w", step, err)
		}
	}
	return sys, nil
}

// Witness returns a shortest event path from the machine's initial
// state to target, or nil when no path exists. Steps carry probe
// arguments under which each guard holds, so where possible the path
// replays through a real Machine (see localWitness for the fallback
// when no probe satisfies a guard).
func Witness(s *core.Spec, target core.State, opts Options) []WitnessStep {
	return localWitness(s, target, opts)
}

// localWitness searches one machine's own graph (breadth-first, so
// the path is shortest) for an event sequence from the initial state
// to target, choosing per-step probe arguments under which the
// transition's guard actually holds so the path replays through a
// real Machine. Edges whose guard no probe satisfies are used only if
// nothing else reaches the target — the path still documents the
// graph even if replay would stall there.
func localWitness(s *core.Spec, target core.State, opts Options) []WitnessStep {
	type edge struct {
		t    core.Transition
		args map[string]any
		ok   bool // some probe satisfies the guard
	}
	outgoing := make(map[core.State][]edge)
	for _, t := range s.Transitions() {
		args, ok := satisfyingProbe(t, opts)
		outgoing[t.From] = append(outgoing[t.From], edge{t: t, args: args, ok: ok})
	}

	// Two passes: first only replayable edges, then any edge.
	for pass := 0; pass < 2; pass++ {
		type node struct {
			state  core.State
			parent int
			step   WitnessStep
		}
		nodes := []node{{state: s.Initial, parent: -1}}
		seen := map[core.State]bool{s.Initial: true}
		for head := 0; head < len(nodes); head++ {
			cur := nodes[head]
			if cur.state == target {
				var path []WitnessStep
				for i := head; nodes[i].parent >= 0; i = nodes[i].parent {
					path = append(path, nodes[i].step)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			for _, e := range outgoing[cur.state] {
				if pass == 0 && !e.ok {
					continue
				}
				if seen[e.t.To] {
					continue
				}
				seen[e.t.To] = true
				nodes = append(nodes, node{
					state:  e.t.To,
					parent: head,
					step: WitnessStep{
						Machine: s.Name, Event: e.t.Event,
						From: e.t.From, To: e.t.To, Label: e.t.Label,
						Args: e.args,
					},
				})
			}
		}
	}
	return nil
}

// satisfyingProbe returns event arguments under which the
// transition's guard holds: the first probe (all-zero included) that
// satisfies it. ok is false when every probe fails — the returned
// args then default to the richest probe for documentation value.
func satisfyingProbe(t core.Transition, opts Options) (map[string]any, bool) {
	if t.Guard == nil {
		return nil, true
	}
	probes := make([]map[string]any, 0, len(opts.Probes)+1)
	probes = append(probes, map[string]any{})
	probes = append(probes, opts.Probes...)
	for _, p := range probes {
		if guardHolds(t, p, opts.ProbeGlobals) {
			return copyProbe(p), true
		}
	}
	if len(opts.Probes) > 0 {
		return copyProbe(opts.Probes[len(opts.Probes)-1]), false
	}
	return nil, false
}

func copyProbe(p map[string]any) map[string]any {
	if len(p) == 0 {
		return nil
	}
	out := make(map[string]any, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
