package sipmsg

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseURI(t *testing.T) {
	tests := []struct {
		give    string
		want    URI
		wantErr bool
	}{
		{give: "sip:alice@a.example.com", want: URI{User: "alice", Host: "a.example.com"}},
		{give: "sip:alice@a.example.com:5070", want: URI{User: "alice", Host: "a.example.com", Port: 5070}},
		{give: "sip:proxy.b.example.com", want: URI{Host: "proxy.b.example.com"}},
		{give: "<sip:bob@b.example.com>", want: URI{User: "bob", Host: "b.example.com"}},
		{give: "sip:bob@b.example.com;transport=udp", want: URI{User: "bob", Host: "b.example.com"}},
		{give: "sip:bob@b.example.com?subject=x", want: URI{User: "bob", Host: "b.example.com"}},
		{give: "  sip:bob@b.example.com  ", want: URI{User: "bob", Host: "b.example.com"}},
		{give: "http://example.com", wantErr: true},
		{give: "sip:", wantErr: true},
		{give: "sip:alice@", wantErr: true},
		{give: "sip:alice@host:notaport", wantErr: true},
		{give: "sip:alice@host:0", wantErr: true},
		{give: "sip:alice@host:70000", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := ParseURI(tt.give)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseURI(%q) = %v, want error", tt.give, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseURI(%q): %v", tt.give, err)
			}
			if got != tt.want {
				t.Fatalf("ParseURI(%q) = %+v, want %+v", tt.give, got, tt.want)
			}
		})
	}
}

func TestURIStringRoundTrip(t *testing.T) {
	tests := []URI{
		{User: "alice", Host: "a.example.com"},
		{User: "alice", Host: "a.example.com", Port: 5061},
		{Host: "proxy.example.com"},
	}
	for _, u := range tests {
		got, err := ParseURI(u.String())
		if err != nil {
			t.Fatalf("round-trip %v: %v", u, err)
		}
		if got != u {
			t.Fatalf("round-trip %v -> %v", u, got)
		}
	}
}

func TestURIEffectivePort(t *testing.T) {
	if p := (URI{Host: "h"}).EffectivePort(); p != 5060 {
		t.Fatalf("default port = %d, want 5060", p)
	}
	if p := (URI{Host: "h", Port: 5070}).EffectivePort(); p != 5070 {
		t.Fatalf("explicit port = %d, want 5070", p)
	}
}

func TestParseNameAddr(t *testing.T) {
	na, err := ParseNameAddr(`"Alice" <sip:alice@a.example.com>;tag=1928301774`)
	if err != nil {
		t.Fatal(err)
	}
	if na.Display != "Alice" {
		t.Fatalf("display = %q", na.Display)
	}
	if na.URI.User != "alice" || na.URI.Host != "a.example.com" {
		t.Fatalf("uri = %v", na.URI)
	}
	if na.Tag() != "1928301774" {
		t.Fatalf("tag = %q", na.Tag())
	}
}

func TestParseNameAddrShortForm(t *testing.T) {
	na, err := ParseNameAddr(`sip:bob@b.example.com;tag=a6c85cf`)
	if err != nil {
		t.Fatal(err)
	}
	if na.URI.User != "bob" {
		t.Fatalf("user = %q", na.URI.User)
	}
	if na.Tag() != "a6c85cf" {
		t.Fatalf("tag = %q", na.Tag())
	}
}

func TestParseNameAddrNoTag(t *testing.T) {
	na, err := ParseNameAddr(`<sip:bob@b.example.com>`)
	if err != nil {
		t.Fatal(err)
	}
	if na.Tag() != "" {
		t.Fatalf("tag = %q, want empty", na.Tag())
	}
}

func TestParseNameAddrErrors(t *testing.T) {
	for _, give := range []string{
		`>sip:x@y<`,
		`"Alice" <http://x>`,
		``,
	} {
		if _, err := ParseNameAddr(give); err == nil {
			t.Fatalf("ParseNameAddr(%q) accepted", give)
		}
	}
}

func TestNameAddrWithTagDoesNotMutate(t *testing.T) {
	orig, err := ParseNameAddr(`<sip:alice@a.com>`)
	if err != nil {
		t.Fatal(err)
	}
	tagged := orig.WithTag("xyz")
	if orig.Tag() != "" {
		t.Fatal("WithTag mutated the receiver")
	}
	if tagged.Tag() != "xyz" {
		t.Fatalf("tag = %q", tagged.Tag())
	}
}

func TestNameAddrStringRoundTrip(t *testing.T) {
	orig := NameAddr{
		Display: "Bob",
		URI:     URI{User: "bob", Host: "b.example.com", Port: 5062},
		Params:  map[string]string{"tag": "t1", "q": "0.7"},
	}
	got, err := ParseNameAddr(orig.String())
	if err != nil {
		t.Fatal(err)
	}
	if got.Display != orig.Display || got.URI != orig.URI {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, orig)
	}
	for k, v := range orig.Params {
		if got.Params[k] != v {
			t.Fatalf("param %q = %q, want %q", k, got.Params[k], v)
		}
	}
}

// Property: any user/host made of URI-safe runes round-trips.
func TestURIRoundTripProperty(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	prop := func(user, host string, port uint16) bool {
		u := URI{User: sanitize(user), Host: sanitize(host), Port: int(port)}
		if u.Host == "" {
			u.Host = "h"
		}
		if u.Port == 0 {
			u.Port = 1
		}
		got, err := ParseURI(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortStrings(t *testing.T) {
	s := []string{"tag", "branch", "received", "a"}
	sortStrings(s)
	want := []string{"a", "branch", "received", "tag"}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sorted = %v", s)
		}
	}
}
