package sipmsg

import (
	"fmt"
	"strconv"
	"strings"
)

// Method is a SIP request method.
type Method string

// The six RFC 3261 core methods (paper Section 2.1).
const (
	INVITE   Method = "INVITE"
	ACK      Method = "ACK"
	BYE      Method = "BYE"
	CANCEL   Method = "CANCEL"
	REGISTER Method = "REGISTER"
	OPTIONS  Method = "OPTIONS"
)

// KnownMethods lists every method this implementation accepts.
var KnownMethods = []Method{INVITE, ACK, BYE, CANCEL, REGISTER, OPTIONS}

// IsKnownMethod reports whether m is one of the six core methods.
func IsKnownMethod(m Method) bool {
	for _, k := range KnownMethods {
		if m == k {
			return true
		}
	}
	return false
}

// Common response status codes used by the testbed.
const (
	StatusTrying            = 100
	StatusRinging           = 180
	StatusOK                = 200
	StatusBadRequest        = 400
	StatusUnauthorized      = 401
	StatusNotFound          = 404
	StatusRequestTimeout    = 408
	StatusTemporarilyUnavbl = 480
	StatusCallDoesNotExist  = 481
	StatusBusyHere          = 486
	StatusRequestTerminated = 487
	StatusServerError       = 500
	StatusServiceUnavbl     = 503
	StatusDeclined          = 603
)

// ReasonPhrase returns the canonical reason phrase for a status code.
func ReasonPhrase(code int) string {
	switch code {
	case StatusTrying:
		return "Trying"
	case StatusRinging:
		return "Ringing"
	case StatusOK:
		return "OK"
	case StatusBadRequest:
		return "Bad Request"
	case StatusUnauthorized:
		return "Unauthorized"
	case StatusNotFound:
		return "Not Found"
	case StatusRequestTimeout:
		return "Request Timeout"
	case StatusTemporarilyUnavbl:
		return "Temporarily Unavailable"
	case StatusCallDoesNotExist:
		return "Call/Transaction Does Not Exist"
	case StatusBusyHere:
		return "Busy Here"
	case StatusRequestTerminated:
		return "Request Terminated"
	case StatusServerError:
		return "Server Internal Error"
	case StatusServiceUnavbl:
		return "Service Unavailable"
	case StatusDeclined:
		return "Decline"
	default:
		return "Unknown"
	}
}

// Via is one Via header entry. The branch parameter identifies the
// transaction (RFC 3261 §8.1.1.7).
type Via struct {
	Transport string // "UDP"
	Host      string
	Port      int
	Params    map[string]string // branch=..., received=...
}

// Branch returns the branch parameter.
func (v Via) Branch() string { return v.Params["branch"] }

// String renders the Via value.
func (v Via) String() string {
	var b strings.Builder
	b.WriteString("SIP/2.0/")
	b.WriteString(v.Transport)
	b.WriteByte(' ')
	b.WriteString(v.Host)
	if v.Port != 0 {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(v.Port))
	}
	writeParams(&b, v.Params)
	return b.String()
}

// ParseVia parses a Via header value.
//
//vids:alloc-ok params map and error paths are per-Via-header; bounded by maxSIPParseAllocs
//vids:nopanic parses untrusted wire input
func ParseVia(s string) (Via, error) {
	s = strings.TrimSpace(s)
	rest, ok := strings.CutPrefix(s, "SIP/2.0/")
	if !ok {
		return Via{}, fmt.Errorf("sipmsg: Via %q: missing SIP/2.0/ prefix", s)
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return Via{}, fmt.Errorf("sipmsg: Via %q: missing sent-by", s)
	}
	v := Via{Transport: rest[:sp]}
	rest = strings.TrimSpace(rest[sp+1:])
	hostPort := rest
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		hostPort = rest[:i]
		v.Params = parseParams(rest[i:])
	} else {
		v.Params = make(map[string]string)
	}
	if c := strings.IndexByte(hostPort, ':'); c >= 0 {
		port, err := strconv.Atoi(hostPort[c+1:])
		if err != nil || port <= 0 || port > 65535 {
			return Via{}, fmt.Errorf("sipmsg: Via %q: bad port", s)
		}
		v.Port = port
		hostPort = hostPort[:c]
	}
	if hostPort == "" {
		return Via{}, fmt.Errorf("sipmsg: Via %q: empty host", s)
	}
	v.Host = hostPort
	return v, nil
}

// CSeq is the CSeq header value: sequence number plus method.
type CSeq struct {
	Seq    uint32
	Method Method
}

// String renders "1 INVITE".
func (c CSeq) String() string {
	return strconv.FormatUint(uint64(c.Seq), 10) + " " + string(c.Method)
}

// ParseCSeq parses a CSeq header value.
//
//vids:nopanic parses untrusted wire input
func ParseCSeq(s string) (CSeq, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: want <seq> <method>", s)
	}
	n, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: bad sequence number", s)
	}
	return CSeq{Seq: uint32(n), Method: Method(fields[1])}, nil
}

// Message is a SIP request or response.
//
// A request has Method and RequestURI set; a response has StatusCode
// and Reason set. Both share the header fields and body.
type Message struct {
	// Request fields.
	Method     Method
	RequestURI URI

	// Response fields.
	StatusCode int
	Reason     string

	// Mandatory headers (RFC 3261 §8.1.1).
	Via         []Via
	From        NameAddr
	To          NameAddr
	CallID      string
	CSeq        CSeq
	Contact     *NameAddr
	MaxForwards int
	Expires     int // -1 means absent

	ContentType string
	Body        []byte

	// Other carries headers this package does not model explicitly,
	// preserved for round-tripping (canonical-cased name -> values).
	Other map[string][]string
}

// IsRequest reports whether m is a request.
func (m *Message) IsRequest() bool { return m.Method != "" }

// IsResponse reports whether m is a response.
func (m *Message) IsResponse() bool { return m.StatusCode != 0 }

// IsProvisional reports a 1xx response.
func (m *Message) IsProvisional() bool {
	return m.StatusCode >= 100 && m.StatusCode < 200
}

// IsSuccess reports a 2xx response.
func (m *Message) IsSuccess() bool {
	return m.StatusCode >= 200 && m.StatusCode < 300
}

// IsFinal reports a final (>= 200) response.
func (m *Message) IsFinal() bool { return m.StatusCode >= 200 }

// TopVia returns the first Via entry, or a zero Via if none.
func (m *Message) TopVia() Via {
	if len(m.Via) == 0 {
		return Via{}
	}
	return m.Via[0]
}

// Branch returns the top Via branch: the RFC 3261 transaction key.
func (m *Message) Branch() string { return m.TopVia().Branch() }

// DialogID returns the (Call-ID, local tag, remote tag) triple that
// identifies a dialog, from the perspective of the UA that sent From.
func (m *Message) DialogID() string {
	return m.CallID + "|" + m.From.Tag() + "|" + m.To.Tag()
}

// TransactionKey identifies the transaction a message belongs to:
// top Via branch plus CSeq method (CANCEL/ACK share the INVITE branch
// but are distinct server transactions, RFC 3261 §17.2.3).
func (m *Message) TransactionKey() string {
	method := m.CSeq.Method
	if method == ACK {
		// ACK for a non-2xx response belongs to the INVITE
		// transaction it acknowledges.
		method = INVITE
	}
	return m.Branch() + "|" + string(method)
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	cp := *m
	cp.Via = make([]Via, len(m.Via))
	for i, v := range m.Via {
		cp.Via[i] = v
		cp.Via[i].Params = cloneMap(v.Params)
	}
	cp.From.Params = cloneMap(m.From.Params)
	cp.To.Params = cloneMap(m.To.Params)
	if m.Contact != nil {
		c := *m.Contact
		c.Params = cloneMap(m.Contact.Params)
		cp.Contact = &c
	}
	if m.Body != nil {
		cp.Body = append([]byte(nil), m.Body...)
	}
	if m.Other != nil {
		cp.Other = make(map[string][]string, len(m.Other))
		for k, vs := range m.Other {
			cp.Other[k] = append([]string(nil), vs...)
		}
	}
	return &cp
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// NewRequest builds a request with sane defaults (Max-Forwards 70,
// Expires absent).
func NewRequest(method Method, requestURI URI) *Message {
	return &Message{
		Method:      method,
		RequestURI:  requestURI,
		MaxForwards: 70,
		Expires:     -1,
	}
}

// NewResponse builds a response to req with the given status code,
// copying the header fields a UAS must mirror (RFC 3261 §8.2.6.2):
// Via, From, To, Call-ID, CSeq.
func NewResponse(req *Message, code int) *Message {
	resp := &Message{
		StatusCode: code,
		Reason:     ReasonPhrase(code),
		CallID:     req.CallID,
		CSeq:       req.CSeq,
		Expires:    -1,
	}
	resp.Via = make([]Via, len(req.Via))
	for i, v := range req.Via {
		resp.Via[i] = v
		resp.Via[i].Params = cloneMap(v.Params)
	}
	resp.From = req.From
	resp.From.Params = cloneMap(req.From.Params)
	resp.To = req.To
	resp.To.Params = cloneMap(req.To.Params)
	return resp
}

// Validate checks the invariants the rest of the stack relies on.
//
//vids:alloc-ok allocates only for protocol violations, which abort the packet
func (m *Message) Validate() error {
	switch {
	case m.IsRequest() && m.IsResponse():
		return fmt.Errorf("sipmsg: message is both request and response")
	case !m.IsRequest() && !m.IsResponse():
		return fmt.Errorf("sipmsg: message is neither request nor response")
	}
	if m.IsRequest() {
		if !IsKnownMethod(m.Method) {
			return fmt.Errorf("sipmsg: unknown method %q", m.Method)
		}
		if m.RequestURI.Host == "" {
			return fmt.Errorf("sipmsg: request without Request-URI host")
		}
	} else if m.StatusCode < 100 || m.StatusCode > 699 {
		return fmt.Errorf("sipmsg: status code %d out of range", m.StatusCode)
	}
	if m.CallID == "" {
		return fmt.Errorf("sipmsg: missing Call-ID")
	}
	if m.CSeq.Method == "" {
		return fmt.Errorf("sipmsg: missing CSeq method")
	}
	if len(m.Via) == 0 {
		return fmt.Errorf("sipmsg: missing Via")
	}
	if m.From.URI.Host == "" {
		return fmt.Errorf("sipmsg: missing From URI")
	}
	if m.To.URI.Host == "" {
		return fmt.Errorf("sipmsg: missing To URI")
	}
	return nil
}

// Summary renders a one-line description for logs and alerts.
//
//vids:coldpath alert text rendering; runs per raised alert, not per packet
func (m *Message) Summary() string {
	if m.IsRequest() {
		return fmt.Sprintf("%s %s (Call-ID %s)", m.Method, m.RequestURI, m.CallID)
	}
	return fmt.Sprintf("%d %s for %s (Call-ID %s)", m.StatusCode, m.Reason, m.CSeq.Method, m.CallID)
}
