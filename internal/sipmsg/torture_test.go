package sipmsg

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// Torture tests in the spirit of RFC 4475: hostile and borderline
// inputs must never panic the parser and must either round-trip or be
// rejected cleanly.

func TestTortureTruncations(t *testing.T) {
	raw := []byte(sampleInvite)
	for i := 0; i <= len(raw); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Parse(raw[:i])
		}()
	}
}

func TestTortureByteFlips(t *testing.T) {
	raw := []byte(sampleInvite)
	for i := 0; i < len(raw); i += 3 {
		mutated := append([]byte(nil), raw...)
		mutated[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at flip %d: %v", i, r)
				}
			}()
			if m, err := Parse(mutated); err == nil {
				// If it still parses it must still serialize.
				_ = m.Bytes()
			}
		}()
	}
}

func TestTortureHostileInputs(t *testing.T) {
	hostile := []string{
		// Stuffed with separators.
		"INVITE\r\n\r\n\r\n",
		":::::\r\n\r\n",
		// Start line only, no headers.
		"INVITE sip:a@b SIP/2.0\r\n\r\n",
		// Absurd Content-Length.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n" +
			"Content-Length: 999999999\r\n\r\nshort",
		// Negative CSeq.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: -1 INVITE\r\n\r\n",
		// CSeq overflow.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 99999999999999999999 INVITE\r\n\r\n",
		// Header with only whitespace value.
		"INVITE sip:a@b SIP/2.0\r\nVia: \r\n\r\n",
		// Deeply folded header.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\n \r\n \r\n ;branch=z9hG4bKx\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Unicode in display names.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKx\r\n" +
			"From: \"日本語\" <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Very long single header.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK" + strings.Repeat("a", 65536) + "\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Many duplicate headers.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKx\r\n" +
			strings.Repeat("X-Dup: v\r\n", 1000) +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Null bytes.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP \x00;branch=x\r\n\r\n",
	}
	for i, give := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on hostile input %d: %v", i, r)
				}
			}()
			if m, err := Parse([]byte(give)); err == nil {
				out := m.Bytes()
				if _, err := Parse(out); err != nil {
					t.Fatalf("hostile input %d parsed but its serialization did not: %v", i, err)
				}
			}
		}()
	}
}

// Property: Parse never panics on arbitrary bytes, and anything it
// accepts serializes and re-parses to the same core identity.
func TestParseTotalOnArbitraryBytes(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		m, err := Parse(data)
		if err != nil {
			return true
		}
		m2, err := Parse(m.Bytes())
		if err != nil {
			return false
		}
		return m2.CallID == m.CallID && m2.CSeq == m.CSeq &&
			m2.IsRequest() == m.IsRequest()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mutations of a valid message never panic.
func TestParseTotalOnMutations(t *testing.T) {
	base := []byte(sampleInvite)
	prop := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = val
		_, _ = Parse(mutated)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// --- Wire-level parity with the seed parser -------------------------
//
// seedParse below is a verbatim copy of the string-based parser this
// package shipped with before the single-pass byte-oriented rewrite.
// The parity tests feed both parsers the same borderline wire images
// and require identical accept/reject decisions and deeply equal
// messages, so the rewrite cannot drift from the reference semantics.

func seedParse(data []byte) (*Message, error) {
	text := string(data)
	headerPart, body, _ := strings.Cut(text, "\r\n\r\n")
	lines := strings.Split(headerPart, "\r\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("sipmsg: empty message")
	}

	m := &Message{Expires: -1, MaxForwards: -1}
	if err := seedParseStartLine(m, lines[0]); err != nil {
		return nil, err
	}

	// Unfold continuation lines (lines starting with SP/HT).
	var folded []string
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		if (ln[0] == ' ' || ln[0] == '\t') && len(folded) > 0 {
			folded[len(folded)-1] += " " + strings.TrimSpace(ln)
			continue
		}
		folded = append(folded, ln)
	}

	contentLength := -1
	for _, ln := range folded {
		name, value, ok := strings.Cut(ln, ":")
		if !ok {
			return nil, fmt.Errorf("sipmsg: malformed header line %q", ln)
		}
		value = strings.TrimSpace(value)
		switch CanonicalHeaderName(name) {
		case "Via":
			for _, part := range seedSplitTopLevel(value, ',') {
				v, err := ParseVia(part)
				if err != nil {
					return nil, err
				}
				m.Via = append(m.Via, v)
			}
		case "From":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: From: %w", err)
			}
			m.From = na
		case "To":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: To: %w", err)
			}
			m.To = na
		case "Call-ID":
			m.CallID = value
		case "CSeq":
			cs, err := ParseCSeq(value)
			if err != nil {
				return nil, err
			}
			m.CSeq = cs
		case "Contact":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: Contact: %w", err)
			}
			m.Contact = &na
		case "Max-Forwards":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Max-Forwards %q", value)
			}
			m.MaxForwards = n
		case "Expires":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Expires %q", value)
			}
			m.Expires = n
		case "Content-Type":
			m.ContentType = value
		case "Content-Length":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Content-Length %q", value)
			}
			contentLength = n
		default:
			if m.Other == nil {
				m.Other = make(map[string][]string)
			}
			cn := CanonicalHeaderName(name)
			m.Other[cn] = append(m.Other[cn], value)
		}
	}

	if m.MaxForwards < 0 {
		m.MaxForwards = 70
	}
	if contentLength >= 0 {
		if contentLength > len(body) {
			return nil, fmt.Errorf("sipmsg: Content-Length %d exceeds body size %d",
				contentLength, len(body))
		}
		body = body[:contentLength]
	}
	if body != "" {
		m.Body = []byte(body)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func seedParseStartLine(m *Message, line string) error {
	line = strings.TrimSpace(line)
	if rest, ok := strings.CutPrefix(line, sipVersion+" "); ok {
		codeStr, reason, _ := strings.Cut(rest, " ")
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sipmsg: bad status line %q", line)
		}
		m.StatusCode = code
		m.Reason = reason
		return nil
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[2] != sipVersion {
		return fmt.Errorf("sipmsg: bad request line %q", line)
	}
	uri, err := ParseURI(fields[1])
	if err != nil {
		return err
	}
	m.Method = Method(fields[0])
	m.RequestURI = uri
	return nil
}

func seedSplitTopLevel(s string, sep byte) []string {
	var out []string
	depth, inQuote := 0, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inQuote = !inQuote
		case inQuote:
		case c == '<':
			depth++
		case c == '>':
			if depth > 0 {
				depth--
			}
		case c == sep && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// seedParseParams is the pre-rewrite strings.Split implementation of
// parseParams, kept as the reference for the in-place walker.
func seedParseParams(s string) map[string]string {
	params := make(map[string]string)
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			params[strings.TrimSpace(part[:eq])] = strings.TrimSpace(part[eq+1:])
		} else {
			params[part] = ""
		}
	}
	return params
}

const parityHeaders = "From: \"Alice\" <sip:alice@a.com>;tag=1\r\n" +
	"To: <sip:bob@b.com>\r\n" +
	"Call-ID: parity@a.com\r\n" +
	"CSeq: 7 INVITE\r\n"

func TestParseParityWithSeed(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"sample invite", sampleInvite},
		{"folded continuation header", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com\r\n" +
			" ;branch=z9hG4bKfold\r\n" +
			"\t;received=10.0.0.1\r\n" +
			parityHeaders + "\r\n"},
		{"folded header with blank continuations", "OPTIONS sip:b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP h\r\n \r\n \r\n ;branch=z9hG4bKx\r\n" +
			parityHeaders + "\r\n"},
		{"colon only in continuation", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			"Subject\r\n x: split across fold\r\n" +
			parityHeaders + "\r\n"},
		{"compact form headers", "BYE sip:alice@a.com SIP/2.0\r\n" +
			"v: SIP/2.0/UDP b.com;branch=z9hG4bKc\r\n" +
			"f: <sip:bob@b.com>;tag=a6c85cf\r\n" +
			"t: <sip:alice@a.com>;tag=19\r\n" +
			"i: compact@b.com\r\n" +
			"CSeq: 2 BYE\r\n" +
			"m: <sip:bob@ua2.b.com>\r\n" +
			"c: application/sdp\r\n" +
			"l: 4\r\n\r\nv=0\r\n"},
		{"mixed-case header names", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"VIA: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			"FROM: <sip:alice@a.com>;tag=1\r\n" +
			"to: <sip:bob@b.com>\r\n" +
			"CALL-id: mixed@a.com\r\n" +
			"cseq: 7 INVITE\r\n" +
			"x-cUSTOM-hdr: kept\r\n\r\n"},
		{"comma-separated multi-Via", "SIP/2.0 200 OK\r\n" +
			"Via: SIP/2.0/UDP p.b.com;branch=z9hG4bKp1, SIP/2.0/UDP a.com:5060;branch=z9hG4bKu1\r\n" +
			"From: <sip:alice@a.com>;tag=1\r\n" +
			"To: <sip:bob@b.com>;tag=2\r\n" +
			"Call-ID: multivia@a.com\r\nCSeq: 7 INVITE\r\n\r\n"},
		{"multi-Via with quoted comma", "SIP/2.0 180 Ringing\r\n" +
			"Via: SIP/2.0/UDP p.b.com;branch=z9hG4bKp1;note=\"a,b\", SIP/2.0/UDP a.com;branch=z9hG4bKu2\r\n" +
			"From: <sip:alice@a.com>;tag=1\r\n" +
			"To: <sip:bob@b.com>;tag=2\r\n" +
			"Call-ID: quoted@a.com\r\nCSeq: 7 INVITE\r\n\r\n"},
		{"missing final CRLF", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Max-Forwards: 69"},
		{"no blank line separator", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders},
		{"content-length shorter than body", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Content-Length: 5\r\n\r\nv=0\r\no=trailing ignored\r\n"},
		{"content-length zero truncates body", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Content-Length: 0\r\n\r\nleftover"},
		{"content-length longer than body", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Content-Length: 999\r\n\r\nshort"},
		{"negative content-length", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Content-Length: -3\r\n\r\n"},
		{"status line without reason", "SIP/2.0 200\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders + "\r\n"},
		{"header without colon", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via SIP/2.0/UDP a.com\r\n" +
			parityHeaders + "\r\n"},
		{"unknown and duplicate headers", "OPTIONS sip:b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"User-Agent: vids/1.0\r\n" +
			"x--odd--name: v1\r\n" +
			"X-Dup: one\r\n" +
			"X-Dup: two\r\n" +
			"Authorization: Digest username=\"alice\"\r\n" +
			"WWW-Authenticate: Digest realm=\"b.com\"\r\n" +
			"Expires: 3600\r\n\r\n"},
		{"whitespace-padded values", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via:   SIP/2.0/UDP a.com;branch=z9hG4bK1  \r\n" +
			"From:\t<sip:alice@a.com>;tag=1\r\n" +
			"To: <sip:bob@b.com>\r\n" +
			"Call-ID:  pad@a.com \r\n" +
			"CSeq:  7   INVITE \r\n" +
			"Max-Forwards:  70 \r\n\r\n"},
		{"empty via value", "INVITE sip:bob@b.com SIP/2.0\r\nVia: \r\n" + parityHeaders + "\r\n"},
		{"cseq overflow", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			"From: <sip:alice@a.com>;tag=1\r\nTo: <sip:bob@b.com>\r\n" +
			"Call-ID: ovf@a.com\r\nCSeq: 99999999999999999999 INVITE\r\n\r\n"},
		{"huge max-forwards", "INVITE sip:bob@b.com SIP/2.0\r\n" +
			"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
			parityHeaders +
			"Max-Forwards: 99999999999999999999\r\n\r\n"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			want, wantErr := seedParse([]byte(tt.raw))
			got, gotErr := Parse([]byte(tt.raw))
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("accept/reject drift: seed err=%v, new err=%v", wantErr, gotErr)
			}
			if wantErr != nil {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("parsed message drift:\nseed: %+v\nnew:  %+v", want, got)
			}
		})
	}
}

// Parity under systematic truncation of a folded, multi-Via message:
// every prefix must get the same accept/reject decision and message.
func TestParseParityUnderTruncation(t *testing.T) {
	raw := []byte("INVITE sip:bob@b.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP p.b.com;branch=z9hG4bKp1, SIP/2.0/UDP a.com;branch=z9hG4bKu1\r\n" +
		"Via: SIP/2.0/UDP h\r\n ;branch=z9hG4bKfold\r\n" +
		parityHeaders +
		"Content-Length: 4\r\n\r\nv=0\r\n")
	for i := 0; i <= len(raw); i++ {
		want, wantErr := seedParse(raw[:i])
		got, gotErr := Parse(raw[:i])
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("truncation %d: seed err=%v, new err=%v", i, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("truncation %d: message drift\nseed: %+v\nnew:  %+v", i, want, got)
		}
	}
}

func TestParseParamsParityWithSeed(t *testing.T) {
	fragments := []string{
		"", ";", ";;", ";tag=1", ";tag=1;lr", "; tag = 1 ; lr ",
		";a=1;a=2", ";=v", ";bare", "junk;tag=x", ";tag=", ";x=a=b",
	}
	for _, s := range fragments {
		if got, want := parseParams(s), seedParseParams(s); !reflect.DeepEqual(got, want) {
			t.Fatalf("parseParams(%q) = %v, seed = %v", s, got, want)
		}
	}
}
