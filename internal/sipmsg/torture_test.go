package sipmsg

import (
	"strings"
	"testing"
	"testing/quick"
)

// Torture tests in the spirit of RFC 4475: hostile and borderline
// inputs must never panic the parser and must either round-trip or be
// rejected cleanly.

func TestTortureTruncations(t *testing.T) {
	raw := []byte(sampleInvite)
	for i := 0; i <= len(raw); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Parse(raw[:i])
		}()
	}
}

func TestTortureByteFlips(t *testing.T) {
	raw := []byte(sampleInvite)
	for i := 0; i < len(raw); i += 3 {
		mutated := append([]byte(nil), raw...)
		mutated[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at flip %d: %v", i, r)
				}
			}()
			if m, err := Parse(mutated); err == nil {
				// If it still parses it must still serialize.
				_ = m.Bytes()
			}
		}()
	}
}

func TestTortureHostileInputs(t *testing.T) {
	hostile := []string{
		// Stuffed with separators.
		"INVITE\r\n\r\n\r\n",
		":::::\r\n\r\n",
		// Start line only, no headers.
		"INVITE sip:a@b SIP/2.0\r\n\r\n",
		// Absurd Content-Length.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n" +
			"Content-Length: 999999999\r\n\r\nshort",
		// Negative CSeq.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: -1 INVITE\r\n\r\n",
		// CSeq overflow.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 99999999999999999999 INVITE\r\n\r\n",
		// Header with only whitespace value.
		"INVITE sip:a@b SIP/2.0\r\nVia: \r\n\r\n",
		// Deeply folded header.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\n \r\n \r\n ;branch=z9hG4bKx\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Unicode in display names.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKx\r\n" +
			"From: \"日本語\" <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Very long single header.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK" + strings.Repeat("a", 65536) + "\r\n" +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Many duplicate headers.
		"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKx\r\n" +
			strings.Repeat("X-Dup: v\r\n", 1000) +
			"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
		// Null bytes.
		"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP \x00;branch=x\r\n\r\n",
	}
	for i, give := range hostile {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on hostile input %d: %v", i, r)
				}
			}()
			if m, err := Parse([]byte(give)); err == nil {
				out := m.Bytes()
				if _, err := Parse(out); err != nil {
					t.Fatalf("hostile input %d parsed but its serialization did not: %v", i, err)
				}
			}
		}()
	}
}

// Property: Parse never panics on arbitrary bytes, and anything it
// accepts serializes and re-parses to the same core identity.
func TestParseTotalOnArbitraryBytes(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		m, err := Parse(data)
		if err != nil {
			return true
		}
		m2, err := Parse(m.Bytes())
		if err != nil {
			return false
		}
		return m2.CallID == m.CallID && m2.CSeq == m.CSeq &&
			m2.IsRequest() == m.IsRequest()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: random mutations of a valid message never panic.
func TestParseTotalOnMutations(t *testing.T) {
	base := []byte(sampleInvite)
	prop := func(pos uint16, val byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = val
		_, _ = Parse(mutated)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
