// Package sipmsg models SIP messages: the subset of RFC 3261 that the
// paper's testbed and the vids detectors need. It covers the six core
// methods (INVITE, ACK, BYE, CANCEL, REGISTER, OPTIONS), response
// status lines, the mandatory header fields (Via with branch, From/To
// with tags, Call-ID, CSeq, Contact, Max-Forwards, Content-Type,
// Content-Length, Expires), and message bodies (SDP). Parsing and
// serialization round-trip.
package sipmsg

import (
	"fmt"
	"strconv"
	"strings"
)

// URI is a SIP URI of the form sip:user@host[:port].
type URI struct {
	User string
	Host string
	Port int // 0 means unspecified (default 5060)
}

// ParseURI parses "sip:user@host:port" and friends. The scheme must be
// "sip" (sips is out of scope: the testbed runs plain UDP).
//
//vids:alloc-ok materializes URI fields; bounded by maxSIPParseAllocs
//vids:nopanic parses untrusted wire input
func ParseURI(s string) (URI, error) {
	s = strings.TrimSpace(s)
	// Strip enclosing angle brackets if present.
	if len(s) >= 2 && s[0] == '<' && s[len(s)-1] == '>' {
		s = s[1 : len(s)-1]
	}
	rest, ok := strings.CutPrefix(s, "sip:")
	if !ok {
		return URI{}, fmt.Errorf("sipmsg: URI %q: missing sip: scheme", s)
	}
	// Drop URI parameters and headers.
	if i := strings.IndexAny(rest, ";?"); i >= 0 {
		rest = rest[:i]
	}
	var u URI
	if at := strings.IndexByte(rest, '@'); at >= 0 {
		u.User = rest[:at]
		rest = rest[at+1:]
	}
	if rest == "" {
		return URI{}, fmt.Errorf("sipmsg: URI %q: empty host", s)
	}
	if c := strings.IndexByte(rest, ':'); c >= 0 {
		port, err := strconv.Atoi(rest[c+1:])
		if err != nil || port <= 0 || port > 65535 {
			return URI{}, fmt.Errorf("sipmsg: URI %q: bad port", s)
		}
		u.Port = port
		rest = rest[:c]
	}
	if rest == "" {
		return URI{}, fmt.Errorf("sipmsg: URI %q: empty host", s)
	}
	// Reject user/host parts that can never round-trip through the
	// canonical rendering: angle brackets terminate the name-addr
	// <...> wrapper early, an '@' in the host re-splits at the wrong
	// separator, and whitespace or control bytes are eaten by the
	// re-parse trim.
	if !uriPartOK(u.User, false) || !uriPartOK(rest, true) {
		return URI{}, fmt.Errorf("sipmsg: URI %q: reserved byte in user or host", s)
	}
	u.Host = rest
	return u, nil
}

// uriPartOK reports whether a user or host part survives the
// serialize/re-parse cycle: no whitespace, control bytes or angle
// brackets, and no '@' inside a host.
func uriPartOK(s string, host bool) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == 0x7f || c == '<' || c == '>' {
			return false
		}
		if host && c == '@' {
			return false
		}
	}
	return true
}

// String renders the URI in canonical sip: form.
//
//vids:coldpath serialization for alerts and tests; the hot path renders keys with ids.AppendURI
func (u URI) String() string {
	var b strings.Builder
	b.WriteString("sip:")
	if u.User != "" {
		b.WriteString(u.User)
		b.WriteByte('@')
	}
	b.WriteString(u.Host)
	if u.Port != 0 {
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(u.Port))
	}
	return b.String()
}

// EffectivePort returns the port, defaulting to 5060.
func (u URI) EffectivePort() int {
	if u.Port == 0 {
		return 5060
	}
	return u.Port
}

// NameAddr is a display-name + URI + parameters construct used by
// From, To and Contact header fields.
type NameAddr struct {
	Display string
	URI     URI
	Params  map[string]string // e.g. tag=...
}

// Tag returns the tag parameter ("" if absent).
func (n NameAddr) Tag() string { return n.Params["tag"] }

// WithTag returns a copy with the tag parameter set.
func (n NameAddr) WithTag(tag string) NameAddr {
	cp := n
	cp.Params = make(map[string]string, len(n.Params)+1)
	for k, v := range n.Params {
		cp.Params[k] = v
	}
	cp.Params["tag"] = tag
	return cp
}

// ParseNameAddr parses `"Alice" <sip:alice@a.com>;tag=xyz` or the
// addr-spec short form `sip:alice@a.com;tag=xyz`.
//
//vids:alloc-ok materializes name-addr fields; bounded by maxSIPParseAllocs
//vids:nopanic parses untrusted wire input
func ParseNameAddr(s string) (NameAddr, error) {
	s = strings.TrimSpace(s)
	var na NameAddr
	rest := s

	if i := strings.IndexByte(s, '<'); i >= 0 {
		j := strings.IndexByte(s, '>')
		// j == i is impossible (one byte cannot be both brackets), so
		// <= is equivalent to < and gives the gate i < j directly.
		if j <= i {
			return na, fmt.Errorf("sipmsg: name-addr %q: unbalanced angle brackets", s)
		}
		na.Display = strings.Trim(strings.TrimSpace(s[:i]), `"`)
		uri, err := ParseURI(s[i+1 : j])
		if err != nil {
			return na, err
		}
		na.URI = uri
		rest = s[j+1:]
	} else {
		// addr-spec form: params after the first ';' belong to the
		// header field, not the URI.
		uriPart := s
		if k := strings.IndexByte(s, ';'); k >= 0 {
			uriPart = s[:k]
			rest = s[k:]
		} else {
			rest = ""
		}
		uri, err := ParseURI(uriPart)
		if err != nil {
			return na, err
		}
		na.URI = uri
	}

	na.Params = parseParams(rest)
	return na, nil
}

// parseParams parses ";k=v;k2=v2" fragments into a map. Bare
// parameters (";lr") map to "". Segments are walked in place rather
// than split into a slice, keeping the per-header cost to the map
// itself.
//
//vids:alloc-ok params map per name-addr header; bounded by maxSIPParseAllocs
func parseParams(s string) map[string]string {
	params := make(map[string]string)
	rest := s
	for rest != "" {
		var part string
		if i := strings.IndexByte(rest, ';'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			part, rest = rest, ""
		}
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if eq := strings.IndexByte(part, '='); eq >= 0 {
			params[strings.TrimSpace(part[:eq])] = strings.TrimSpace(part[eq+1:])
		} else {
			params[part] = ""
		}
	}
	return params
}

// String renders the name-addr with sorted parameters for stable
// round-tripping.
func (n NameAddr) String() string {
	var b strings.Builder
	if n.Display != "" {
		b.WriteByte('"')
		b.WriteString(n.Display)
		b.WriteString(`" `)
	}
	b.WriteByte('<')
	b.WriteString(n.URI.String())
	b.WriteByte('>')
	writeParams(&b, n.Params)
	return b.String()
}

func writeParams(b *strings.Builder, params map[string]string) {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		b.WriteByte(';')
		b.WriteString(k)
		if v := params[k]; v != "" {
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
}

// sortStrings is a tiny insertion sort; parameter lists have at most a
// handful of entries and this avoids importing sort into the hot path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
