package sipmsg

import (
	"strings"
	"testing"
)

// Native fuzz targets cross-checking the vidslint nopanic gate from
// the dynamic side: the static analysis proves the absence of panic
// sites over the //vids:nopanic closure, the fuzzers hammer the same
// entry points with hostile bytes. Seeds are the RFC-4475-flavored
// shapes from the torture tests; `make fuzz-smoke` runs each target
// briefly in CI, and the committed corpus under testdata/fuzz replays
// as regression cases on every plain `go test`.

// fuzzSeedMessages mirrors the hostile inputs of
// TestTortureHostileInputs plus the well-formed baseline.
var fuzzSeedMessages = []string{
	sampleInvite,
	"INVITE\r\n\r\n\r\n",
	":::::\r\n\r\n",
	"INVITE sip:a@b SIP/2.0\r\n\r\n",
	"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
		"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n" +
		"Content-Length: 999999999\r\n\r\nshort",
	"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
		"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: -1 INVITE\r\n\r\n",
	"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bK1\r\n" +
		"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>\r\nCall-ID: c\r\nCSeq: 99999999999999999999 INVITE\r\n\r\n",
	"INVITE sip:a@b SIP/2.0\r\nVia: \r\n\r\n",
	"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h\r\n \r\n \r\n ;branch=z9hG4bKx\r\n" +
		"From: <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
	"OPTIONS sip:b SIP/2.0\r\nVia: SIP/2.0/UDP h;branch=z9hG4bKx\r\n" +
		"From: \"日本語\" <sip:x@y>;tag=1\r\nTo: <sip:b>\r\nCall-ID: c\r\nCSeq: 1 OPTIONS\r\n\r\n",
	"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP \x00;branch=x\r\n\r\n",
	"SIP/2.0 200\r\nVia: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
		"From: <sip:x@y>;tag=1\r\nTo: <sip:a@b>;tag=2\r\nCall-ID: c\r\nCSeq: 1 INVITE\r\n\r\n",
}

// FuzzSIPParse: Parse must be total on arbitrary bytes, and any
// message it accepts must serialize and re-parse to the same core
// identity (the property TestParseTotalOnArbitraryBytes spot-checks
// with testing/quick).
func FuzzSIPParse(f *testing.F) {
	for _, s := range fuzzSeedMessages {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		out := m.Bytes()
		m2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted message failed to re-parse its own serialization: %v\nwire: %q", err, out)
		}
		if m2.CallID != m.CallID || m2.CSeq != m.CSeq || m2.IsRequest() != m.IsRequest() {
			t.Fatalf("core identity drifted across round-trip:\nfirst:  %+v\nsecond: %+v", m, m2)
		}
	})
}

// FuzzURIParse: ParseURI must be total, never accept an empty host,
// and accepted URIs must round-trip through their canonical form.
func FuzzURIParse(f *testing.F) {
	for _, s := range []string{
		"sip:alice@a.example.com",
		"<sip:bob@b.example.com:5060>",
		"sip:b",
		"sip:@",
		"sip::",
		"sip:a@b:99999",
		"sip:a@b;transport=udp?h=v",
		"<>",
		"sips:x@y",
		"  <sip:pad@host>  ",
		strings.Repeat("sip:", 64),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		u, err := ParseURI(s)
		if err != nil {
			return
		}
		if u.Host == "" {
			t.Fatalf("ParseURI(%q) accepted an empty host", s)
		}
		canon := u.String()
		u2, err := ParseURI(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted URI %q was rejected: %v", canon, s, err)
		}
		if u2 != u {
			t.Fatalf("URI drifted through canonicalization: %+v -> %q -> %+v", u, canon, u2)
		}
	})
}
