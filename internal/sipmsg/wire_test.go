package sipmsg

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// sampleInvite is a realistic INVITE with an SDP body, modeled on the
// RFC 3261 example flows.
const sampleInvite = "INVITE sip:bob@b.example.com SIP/2.0\r\n" +
	"Via: SIP/2.0/UDP ua1.a.example.com:5060;branch=z9hG4bK776asdhds\r\n" +
	"Max-Forwards: 70\r\n" +
	"To: \"Bob\" <sip:bob@b.example.com>\r\n" +
	"From: \"Alice\" <sip:alice@a.example.com>;tag=1928301774\r\n" +
	"Call-ID: a84b4c76e66710@ua1.a.example.com\r\n" +
	"CSeq: 314159 INVITE\r\n" +
	"Contact: <sip:alice@ua1.a.example.com>\r\n" +
	"Content-Type: application/sdp\r\n" +
	"Content-Length: 129\r\n" +
	"\r\n" +
	"v=0\r\n" +
	"o=alice 2890844526 2890844526 IN IP4 ua1.a.example.com\r\n" +
	"s=call\r\n" +
	"c=IN IP4 ua1.a.example.com\r\n" +
	"t=0 0\r\n" +
	"m=audio 49172 RTP/AVP 18\r\n"

func TestParseInvite(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsRequest() || m.Method != INVITE {
		t.Fatalf("method = %q", m.Method)
	}
	if m.RequestURI.User != "bob" || m.RequestURI.Host != "b.example.com" {
		t.Fatalf("request URI = %v", m.RequestURI)
	}
	if got := m.Branch(); got != "z9hG4bK776asdhds" {
		t.Fatalf("branch = %q", got)
	}
	if m.From.Tag() != "1928301774" {
		t.Fatalf("from tag = %q", m.From.Tag())
	}
	if m.To.Tag() != "" {
		t.Fatalf("to tag = %q, want empty on initial INVITE", m.To.Tag())
	}
	if m.CallID != "a84b4c76e66710@ua1.a.example.com" {
		t.Fatalf("call-id = %q", m.CallID)
	}
	if m.CSeq != (CSeq{Seq: 314159, Method: INVITE}) {
		t.Fatalf("cseq = %v", m.CSeq)
	}
	if m.Contact == nil || m.Contact.URI.Host != "ua1.a.example.com" {
		t.Fatalf("contact = %v", m.Contact)
	}
	if m.ContentType != "application/sdp" {
		t.Fatalf("content-type = %q", m.ContentType)
	}
	if len(m.Body) != 129 {
		t.Fatalf("body length = %d, want 129", len(m.Body))
	}
	if m.MaxForwards != 70 {
		t.Fatalf("max-forwards = %d", m.MaxForwards)
	}
}

func TestParseResponse(t *testing.T) {
	raw := "SIP/2.0 180 Ringing\r\n" +
		"Via: SIP/2.0/UDP ua1.a.example.com:5060;branch=z9hG4bK776asdhds\r\n" +
		"To: <sip:bob@b.example.com>;tag=a6c85cf\r\n" +
		"From: <sip:alice@a.example.com>;tag=1928301774\r\n" +
		"Call-ID: a84b4c76e66710@ua1.a.example.com\r\n" +
		"CSeq: 314159 INVITE\r\n" +
		"Content-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsResponse() || m.StatusCode != 180 {
		t.Fatalf("status = %d", m.StatusCode)
	}
	if !m.IsProvisional() || m.IsFinal() || m.IsSuccess() {
		t.Fatal("classification of 180 wrong")
	}
	if m.To.Tag() != "a6c85cf" {
		t.Fatalf("to tag = %q", m.To.Tag())
	}
	if m.Reason != "Ringing" {
		t.Fatalf("reason = %q", m.Reason)
	}
}

func TestParseCompactForms(t *testing.T) {
	raw := "BYE sip:alice@a.example.com SIP/2.0\r\n" +
		"v: SIP/2.0/UDP ua2.b.example.com;branch=z9hG4bKnashds10\r\n" +
		"f: <sip:bob@b.example.com>;tag=a6c85cf\r\n" +
		"t: <sip:alice@a.example.com>;tag=1928301774\r\n" +
		"i: a84b4c76e66710@ua1.a.example.com\r\n" +
		"CSeq: 231 BYE\r\n" +
		"l: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != BYE {
		t.Fatalf("method = %q", m.Method)
	}
	if m.CallID == "" || m.From.Tag() != "a6c85cf" {
		t.Fatalf("compact headers not resolved: %+v", m)
	}
}

func TestParseFoldedHeader(t *testing.T) {
	raw := "OPTIONS sip:b.example.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP ua1.a.example.com\r\n" +
		" ;branch=z9hG4bKfold\r\n" +
		"From: <sip:alice@a.example.com>;tag=1\r\n" +
		"To: <sip:b.example.com>\r\n" +
		"Call-ID: x@y\r\n" +
		"CSeq: 1 OPTIONS\r\n" +
		"Content-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if m.Branch() != "z9hG4bKfold" {
		t.Fatalf("branch = %q", m.Branch())
	}
}

func TestParseMultiValueVia(t *testing.T) {
	raw := "SIP/2.0 200 OK\r\n" +
		"Via: SIP/2.0/UDP proxy.b.example.com;branch=z9hG4bKp1, SIP/2.0/UDP ua1.a.example.com;branch=z9hG4bKu1\r\n" +
		"From: <sip:alice@a.example.com>;tag=1\r\n" +
		"To: <sip:bob@b.example.com>;tag=2\r\n" +
		"Call-ID: c1\r\n" +
		"CSeq: 1 INVITE\r\n" +
		"Content-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Via) != 2 {
		t.Fatalf("via count = %d, want 2", len(m.Via))
	}
	if m.Via[0].Host != "proxy.b.example.com" || m.Via[1].Host != "ua1.a.example.com" {
		t.Fatalf("via order wrong: %v", m.Via)
	}
}

func TestParseErrors(t *testing.T) {
	base := "INVITE sip:bob@b.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
		"From: <sip:alice@a.com>;tag=1\r\n" +
		"To: <sip:bob@b.com>\r\n" +
		"Call-ID: c1\r\n" +
		"CSeq: 1 INVITE\r\n" +
		"Content-Length: 0\r\n\r\n"
	if _, err := Parse([]byte(base)); err != nil {
		t.Fatalf("baseline must parse: %v", err)
	}

	tests := []struct {
		name string
		raw  string
	}{
		{"empty", ""},
		{"garbage start line", "HELLO WORLD\r\n\r\n"},
		{"bad version", "INVITE sip:bob@b.com SIP/3.0\r\n\r\n"},
		{"bad status code", "SIP/2.0 9999 Wat\r\n\r\n"},
		{"missing call-id", strings.Replace(base, "Call-ID: c1\r\n", "", 1)},
		{"missing via", strings.Replace(base, "Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n", "", 1)},
		{"missing cseq", strings.Replace(base, "CSeq: 1 INVITE\r\n", "", 1)},
		{"missing from", strings.Replace(base, "From: <sip:alice@a.com>;tag=1\r\n", "", 1)},
		{"missing to", strings.Replace(base, "To: <sip:bob@b.com>\r\n", "", 1)},
		{"bad cseq", strings.Replace(base, "CSeq: 1 INVITE", "CSeq: banana", 1)},
		{"bad content-length", strings.Replace(base, "Content-Length: 0", "Content-Length: -5", 1)},
		{"content-length too large", strings.Replace(base, "Content-Length: 0", "Content-Length: 10", 1)},
		{"header without colon", strings.Replace(base, "Call-ID: c1", "Call-ID c1", 1)},
		{"unknown method", strings.Replace(base, "INVITE sip:bob@b.com", "PUBLISH sip:bob@b.com", 1)},
		{"bad via", strings.Replace(base, "Via: SIP/2.0/UDP a.com;branch=z9hG4bK1", "Via: nonsense", 1)},
		{"bad max-forwards", base[:len(base)-2] + "Max-Forwards: x\r\n\r\n"},
		{"bad expires", base[:len(base)-2] + "Expires: x\r\n\r\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.raw)); err == nil {
				t.Fatalf("Parse accepted %q", tt.raw)
			}
		})
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	out := m.Bytes()
	m2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if m2.Method != m.Method || m2.CallID != m.CallID || m2.CSeq != m.CSeq {
		t.Fatalf("round-trip changed core fields: %+v vs %+v", m2, m)
	}
	if !bytes.Equal(m2.Body, m.Body) {
		t.Fatal("round-trip changed body")
	}
	// Second serialization must be byte-identical (canonical form).
	if !bytes.Equal(out, m2.Bytes()) {
		t.Fatalf("serialization not canonical:\n%s\nvs\n%s", out, m2.Bytes())
	}
}

func TestUnknownHeadersPreserved(t *testing.T) {
	raw := "OPTIONS sip:b.com SIP/2.0\r\n" +
		"Via: SIP/2.0/UDP a.com;branch=z9hG4bK1\r\n" +
		"From: <sip:alice@a.com>;tag=1\r\n" +
		"To: <sip:b.com>\r\n" +
		"Call-ID: c1\r\n" +
		"CSeq: 1 OPTIONS\r\n" +
		"User-Agent: vids-testbed/1.0\r\n" +
		"X-Custom: one\r\n" +
		"X-Custom: two\r\n" +
		"Content-Length: 0\r\n\r\n"
	m, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Other["User-Agent"]; len(got) != 1 || got[0] != "vids-testbed/1.0" {
		t.Fatalf("User-Agent = %v", got)
	}
	if got := m.Other["X-Custom"]; len(got) != 2 {
		t.Fatalf("X-Custom = %v", got)
	}
	m2, err := Parse(m.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Other["X-Custom"]; len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("round-trip X-Custom = %v", got)
	}
}

func TestNewResponseMirrorsHeaders(t *testing.T) {
	req, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	resp := NewResponse(req, StatusRinging)
	if resp.StatusCode != 180 || resp.Reason != "Ringing" {
		t.Fatalf("status = %d %q", resp.StatusCode, resp.Reason)
	}
	if resp.CallID != req.CallID || resp.CSeq != req.CSeq {
		t.Fatal("Call-ID/CSeq not mirrored")
	}
	if len(resp.Via) != len(req.Via) || resp.Branch() != req.Branch() {
		t.Fatal("Via not mirrored")
	}
	if resp.From.Tag() != req.From.Tag() {
		t.Fatal("From tag not mirrored")
	}
	// Mutating the response tag must not affect the request.
	resp.To = resp.To.WithTag("newtag")
	if req.To.Tag() != "" {
		t.Fatal("NewResponse aliases request header maps")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Via[0].Params["branch"] = "z9hG4bKother"
	c.Body[0] = 'X'
	c.From.Params["tag"] = "mutated"
	if m.Branch() == "z9hG4bKother" {
		t.Fatal("Clone shares Via params")
	}
	if m.Body[0] == 'X' {
		t.Fatal("Clone shares body")
	}
	if m.From.Tag() == "mutated" {
		t.Fatal("Clone shares From params")
	}
}

func TestTransactionKeyACKMapsToInvite(t *testing.T) {
	req, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	ack := NewRequest(ACK, req.RequestURI)
	ack.Via = []Via{{Transport: "UDP", Host: "ua1.a.example.com", Params: map[string]string{"branch": req.Branch()}}}
	ack.From = req.From
	ack.To = req.To.WithTag("remote")
	ack.CallID = req.CallID
	ack.CSeq = CSeq{Seq: req.CSeq.Seq, Method: ACK}
	if ack.TransactionKey() != req.TransactionKey() {
		t.Fatalf("ACK key %q != INVITE key %q", ack.TransactionKey(), req.TransactionKey())
	}
}

func TestTransactionKeyCancelDiffersFromInvite(t *testing.T) {
	req, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	cancel := req.Clone()
	cancel.Method = CANCEL
	cancel.CSeq.Method = CANCEL
	cancel.Body = nil
	cancel.ContentType = ""
	if cancel.TransactionKey() == req.TransactionKey() {
		t.Fatal("CANCEL must form its own transaction (RFC 3261 §9.2)")
	}
}

func TestValidateRejectsAmbiguousMessage(t *testing.T) {
	m := &Message{Method: INVITE, StatusCode: 200}
	if err := m.Validate(); err == nil {
		t.Fatal("request+response accepted")
	}
	if err := (&Message{}).Validate(); err == nil {
		t.Fatal("neither accepted")
	}
}

func TestSummary(t *testing.T) {
	req, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(req.Summary(), "INVITE") {
		t.Fatalf("summary = %q", req.Summary())
	}
	resp := NewResponse(req, StatusOK)
	if !strings.Contains(resp.Summary(), "200") {
		t.Fatalf("summary = %q", resp.Summary())
	}
}

func TestReasonPhraseKnownAndUnknown(t *testing.T) {
	if ReasonPhrase(StatusRinging) != "Ringing" {
		t.Fatal("180 phrase wrong")
	}
	if ReasonPhrase(299) != "Unknown" {
		t.Fatal("unknown code phrase wrong")
	}
}

func TestCanonicalHeaderName(t *testing.T) {
	tests := map[string]string{
		"via":          "Via",
		"v":            "Via",
		"CALL-ID":      "Call-ID",
		"cseq":         "CSeq",
		"x-custom-hdr": "X-Custom-Hdr",
		"  from ":      "From",
	}
	for give, want := range tests {
		if got := CanonicalHeaderName(give); got != want {
			t.Fatalf("CanonicalHeaderName(%q) = %q, want %q", give, got, want)
		}
	}
}

func TestWireSizeIsRealistic(t *testing.T) {
	m, err := Parse([]byte(sampleInvite))
	if err != nil {
		t.Fatal(err)
	}
	// The paper assumes ~500-byte SIP messages; our canonical INVITE
	// with SDP should be in the same range.
	if sz := m.WireSize(); sz < 300 || sz > 800 {
		t.Fatalf("WireSize = %d, want a realistic SIP size", sz)
	}
}

// Property: a structurally valid generated request round-trips through
// Bytes -> Parse with identity on the key fields.
func TestMessageRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	prop := func(user, host, callID, tag string, seq uint32, methodIdx uint8) bool {
		method := KnownMethods[int(methodIdx)%len(KnownMethods)]
		m := NewRequest(method, URI{User: clean(user), Host: clean(host)})
		m.Via = []Via{{
			Transport: "UDP", Host: clean(host),
			Params: map[string]string{"branch": "z9hG4bK" + clean(callID)},
		}}
		m.From = NameAddr{
			URI:    URI{User: clean(user), Host: clean(host)},
			Params: map[string]string{"tag": clean(tag)},
		}
		m.To = NameAddr{URI: URI{User: "callee", Host: clean(host)}}
		m.CallID = clean(callID) + "@" + clean(host)
		m.CSeq = CSeq{Seq: seq, Method: method}

		got, err := Parse(m.Bytes())
		if err != nil {
			return false
		}
		return got.Method == m.Method &&
			got.CallID == m.CallID &&
			got.CSeq == m.CSeq &&
			got.Branch() == m.Branch() &&
			got.From.Tag() == m.From.Tag()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParseCSeqValues(t *testing.T) {
	if _, err := ParseCSeq("1"); err == nil {
		t.Fatal("one-field CSeq accepted")
	}
	if _, err := ParseCSeq("x INVITE"); err == nil {
		t.Fatal("non-numeric CSeq accepted")
	}
	cs, err := ParseCSeq("  42   BYE ")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Seq != 42 || cs.Method != BYE {
		t.Fatalf("cseq = %v", cs)
	}
}

func TestParseViaValues(t *testing.T) {
	v, err := ParseVia("SIP/2.0/UDP proxy.b.example.com:5060;branch=z9hG4bKx;received=10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if v.Transport != "UDP" || v.Host != "proxy.b.example.com" || v.Port != 5060 {
		t.Fatalf("via = %+v", v)
	}
	if v.Branch() != "z9hG4bKx" || v.Params["received"] != "10.0.0.1" {
		t.Fatalf("params = %v", v.Params)
	}
	for _, bad := range []string{"UDP host", "SIP/2.0/UDP", "SIP/2.0/UDP :5060", "SIP/2.0/UDP h:bad"} {
		if _, err := ParseVia(bad); err == nil {
			t.Fatalf("ParseVia(%q) accepted", bad)
		}
	}
}
