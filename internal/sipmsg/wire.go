package sipmsg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

const sipVersion = "SIP/2.0"

// canonicalHeader maps lower-case and compact header names to their
// canonical forms (RFC 3261 §7.3.3 compact forms).
var canonicalHeader = map[string]string{
	"via":              "Via",
	"v":                "Via",
	"from":             "From",
	"f":                "From",
	"to":               "To",
	"t":                "To",
	"call-id":          "Call-ID",
	"i":                "Call-ID",
	"cseq":             "CSeq",
	"contact":          "Contact",
	"m":                "Contact",
	"max-forwards":     "Max-Forwards",
	"content-type":     "Content-Type",
	"c":                "Content-Type",
	"content-length":   "Content-Length",
	"l":                "Content-Length",
	"expires":          "Expires",
	"authorization":    "Authorization",
	"www-authenticate": "WWW-Authenticate",
}

// CanonicalHeaderName normalizes a header field name, resolving
// compact forms; unknown names get simple Title-By-Dash casing.
func CanonicalHeaderName(name string) string {
	if c, ok := canonicalHeader[strings.ToLower(strings.TrimSpace(name))]; ok {
		return c
	}
	parts := strings.Split(strings.TrimSpace(name), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// Parse parses a SIP message from its wire form.
func Parse(data []byte) (*Message, error) {
	text := string(data)
	headerPart, body, _ := strings.Cut(text, "\r\n\r\n")
	lines := strings.Split(headerPart, "\r\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("sipmsg: empty message")
	}

	m := &Message{Expires: -1, MaxForwards: -1}
	if err := parseStartLine(m, lines[0]); err != nil {
		return nil, err
	}

	// Unfold continuation lines (lines starting with SP/HT).
	var folded []string
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		if (ln[0] == ' ' || ln[0] == '\t') && len(folded) > 0 {
			folded[len(folded)-1] += " " + strings.TrimSpace(ln)
			continue
		}
		folded = append(folded, ln)
	}

	contentLength := -1
	for _, ln := range folded {
		name, value, ok := strings.Cut(ln, ":")
		if !ok {
			return nil, fmt.Errorf("sipmsg: malformed header line %q", ln)
		}
		value = strings.TrimSpace(value)
		switch CanonicalHeaderName(name) {
		case "Via":
			// Multiple Via values may share a line, comma-separated.
			for _, part := range splitTopLevel(value, ',') {
				v, err := ParseVia(part)
				if err != nil {
					return nil, err
				}
				m.Via = append(m.Via, v)
			}
		case "From":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: From: %w", err)
			}
			m.From = na
		case "To":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: To: %w", err)
			}
			m.To = na
		case "Call-ID":
			m.CallID = value
		case "CSeq":
			cs, err := ParseCSeq(value)
			if err != nil {
				return nil, err
			}
			m.CSeq = cs
		case "Contact":
			na, err := ParseNameAddr(value)
			if err != nil {
				return nil, fmt.Errorf("sipmsg: Contact: %w", err)
			}
			m.Contact = &na
		case "Max-Forwards":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Max-Forwards %q", value)
			}
			m.MaxForwards = n
		case "Expires":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Expires %q", value)
			}
			m.Expires = n
		case "Content-Type":
			m.ContentType = value
		case "Content-Length":
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("sipmsg: bad Content-Length %q", value)
			}
			contentLength = n
		default:
			if m.Other == nil {
				m.Other = make(map[string][]string)
			}
			cn := CanonicalHeaderName(name)
			m.Other[cn] = append(m.Other[cn], value)
		}
	}

	if m.MaxForwards < 0 {
		m.MaxForwards = 70
	}
	if contentLength >= 0 {
		if contentLength > len(body) {
			return nil, fmt.Errorf("sipmsg: Content-Length %d exceeds body size %d",
				contentLength, len(body))
		}
		body = body[:contentLength]
	}
	if body != "" {
		m.Body = []byte(body)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseStartLine(m *Message, line string) error {
	line = strings.TrimSpace(line)
	if rest, ok := strings.CutPrefix(line, sipVersion+" "); ok {
		// Status line: SIP/2.0 200 OK
		codeStr, reason, _ := strings.Cut(rest, " ")
		code, err := strconv.Atoi(codeStr)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sipmsg: bad status line %q", line)
		}
		m.StatusCode = code
		m.Reason = reason
		return nil
	}
	// Request line: INVITE sip:bob@b.com SIP/2.0
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[2] != sipVersion {
		return fmt.Errorf("sipmsg: bad request line %q", line)
	}
	uri, err := ParseURI(fields[1])
	if err != nil {
		return err
	}
	m.Method = Method(fields[0])
	m.RequestURI = uri
	return nil
}

// splitTopLevel splits on sep outside of quoted strings and angle
// brackets.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth, inQuote := 0, false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '"':
			inQuote = !inQuote
		case inQuote:
		case c == '<':
			depth++
		case c == '>':
			if depth > 0 {
				depth--
			}
		case c == sep && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// Bytes serializes the message to its wire form with a correct
// Content-Length.
func (m *Message) Bytes() []byte {
	var b strings.Builder
	if m.IsRequest() {
		b.WriteString(string(m.Method))
		b.WriteByte(' ')
		b.WriteString(m.RequestURI.String())
		b.WriteByte(' ')
		b.WriteString(sipVersion)
	} else {
		b.WriteString(sipVersion)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(m.StatusCode))
		b.WriteByte(' ')
		reason := m.Reason
		if reason == "" {
			reason = ReasonPhrase(m.StatusCode)
		}
		b.WriteString(reason)
	}
	b.WriteString("\r\n")

	for _, v := range m.Via {
		writeHeader(&b, "Via", v.String())
	}
	writeHeader(&b, "From", m.From.String())
	writeHeader(&b, "To", m.To.String())
	writeHeader(&b, "Call-ID", m.CallID)
	writeHeader(&b, "CSeq", m.CSeq.String())
	if m.Contact != nil {
		writeHeader(&b, "Contact", m.Contact.String())
	}
	if m.IsRequest() {
		mf := m.MaxForwards
		if mf < 0 {
			mf = 70
		}
		writeHeader(&b, "Max-Forwards", strconv.Itoa(mf))
	}
	if m.Expires >= 0 {
		writeHeader(&b, "Expires", strconv.Itoa(m.Expires))
	}
	if m.ContentType != "" {
		writeHeader(&b, "Content-Type", m.ContentType)
	}

	if m.Other != nil {
		names := make([]string, 0, len(m.Other))
		for name := range m.Other {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, v := range m.Other[name] {
				writeHeader(&b, name, v)
			}
		}
	}

	writeHeader(&b, "Content-Length", strconv.Itoa(len(m.Body)))
	b.WriteString("\r\n")
	b.Write(m.Body)
	return []byte(b.String())
}

func writeHeader(b *strings.Builder, name, value string) {
	b.WriteString(name)
	b.WriteString(": ")
	b.WriteString(value)
	b.WriteString("\r\n")
}

// WireSize returns the serialized size in bytes. The paper assumes an
// average SIP message size of 500 bytes (Section 7.1); the simulator
// uses real serialized sizes, which land in the same range.
func (m *Message) WireSize() int { return len(m.Bytes()) }
