package sipmsg

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

const sipVersion = "SIP/2.0"

// canonicalHeader maps lower-case and compact header names to their
// canonical forms (RFC 3261 §7.3.3 compact forms).
var canonicalHeader = map[string]string{
	"via":              "Via",
	"v":                "Via",
	"from":             "From",
	"f":                "From",
	"to":               "To",
	"t":                "To",
	"call-id":          "Call-ID",
	"i":                "Call-ID",
	"cseq":             "CSeq",
	"contact":          "Contact",
	"m":                "Contact",
	"max-forwards":     "Max-Forwards",
	"content-type":     "Content-Type",
	"c":                "Content-Type",
	"content-length":   "Content-Length",
	"l":                "Content-Length",
	"expires":          "Expires",
	"authorization":    "Authorization",
	"www-authenticate": "WWW-Authenticate",
}

// CanonicalHeaderName normalizes a header field name, resolving
// compact forms; unknown names get simple Title-By-Dash casing.
func CanonicalHeaderName(name string) string {
	if c, ok := canonicalHeader[strings.ToLower(strings.TrimSpace(name))]; ok {
		return c
	}
	parts := strings.Split(strings.TrimSpace(name), "-")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + strings.ToLower(p[1:])
	}
	return strings.Join(parts, "-")
}

// Header identities for the byte-level lookup. hdrOther covers both
// unmodeled known headers (which carry a canonical name) and unknown
// ones (canonicalized on demand).
const (
	hdrOther = iota
	hdrVia
	hdrFrom
	hdrTo
	hdrCallID
	hdrCSeq
	hdrContact
	hdrMaxForwards
	hdrExpires
	hdrContentType
	hdrContentLength
)

var crlfcrlf = []byte("\r\n\r\n")

// Parse parses a SIP message from its wire form in a single pass over
// data: no up-front copy of the input, no header-block split. Field
// values are materialized as independent strings, but Body aliases
// data — callers that reuse or mutate the buffer after Parse must
// copy the body (Clone does).
//
//vids:noalloc per-packet SIP decode; budget alloc_test.go:maxSIPParseAllocs
//vids:nopanic parses untrusted wire input
func Parse(data []byte) (*Message, error) {
	headerEnd, bodyStart := len(data), len(data)
	if i := bytes.Index(data, crlfcrlf); i >= 0 {
		headerEnd, bodyStart = i, i+4
	}
	hdr := data[:headerEnd]

	line, pos := cutLine(hdr, 0)
	if len(trimASCII(line)) == 0 {
		return nil, fmt.Errorf("sipmsg: empty message") //vids:alloc-ok error path: malformed message aborts parsing
	}
	m := &Message{Expires: -1, MaxForwards: -1} //vids:alloc-ok one message object per packet; budgeted by alloc_test.go:maxSIPParseAllocs
	if err := parseStartLineBytes(m, line); err != nil {
		return nil, err
	}

	// Walk the header block one physical line at a time, unfolding
	// continuation lines (SP/HT-led) into scratch only when they occur.
	contentLength := -1
	var cur []byte     // pending logical header line
	var scratch []byte // reused assembly buffer for folded lines
	haveCur, curFolded := false, false
	for pos <= len(hdr) {
		var ln []byte
		ln, pos = cutLine(hdr, pos)
		if len(ln) == 0 {
			continue
		}
		if (ln[0] == ' ' || ln[0] == '\t') && haveCur {
			if !curFolded {
				scratch = append(scratch[:0], cur...)
				curFolded = true
			}
			scratch = append(scratch, ' ')
			scratch = append(scratch, trimASCII(ln)...)
			cur = scratch
			continue
		}
		if haveCur {
			if err := m.parseHeaderLine(cur, &contentLength); err != nil {
				return nil, err
			}
		}
		cur, haveCur, curFolded = ln, true, false
	}
	if haveCur {
		if err := m.parseHeaderLine(cur, &contentLength); err != nil {
			return nil, err
		}
	}

	if m.MaxForwards < 0 {
		m.MaxForwards = 70
	}
	body := data[bodyStart:] //vids:panic-ok bodyStart is len(data) or bytes.Index(data, crlfcrlf)+4 ≤ len(data) when the 4-byte needle is found
	if contentLength >= 0 {
		if contentLength > len(body) {
			return nil, fmt.Errorf("sipmsg: Content-Length %d exceeds body size %d", //vids:alloc-ok error path: malformed message aborts parsing
				contentLength, len(body))
		}
		body = body[:contentLength]
	}
	if len(body) > 0 {
		m.Body = body
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// cutLine returns the line starting at pos (terminated by CRLF or end
// of b) and the position after its terminator. Positions past len(b)
// mean the input is exhausted; a final CRLF yields one trailing empty
// line, matching a CRLF string split.
func cutLine(b []byte, pos int) ([]byte, int) {
	if pos < 0 || pos > len(b) {
		return nil, len(b) + 1
	}
	rest := b[pos:]
	for i := 0; i+1 < len(rest); i++ {
		if rest[i] == '\r' && rest[i+1] == '\n' {
			return rest[:i], pos + i + 2
		}
	}
	return rest, len(b) + 1
}

// parseHeaderLine dispatches one logical (unfolded) header line.
//
//vids:alloc-ok materializes the retained header values; bounded by alloc_test.go:maxSIPParseAllocs
func (m *Message) parseHeaderLine(ln []byte, contentLength *int) error {
	colon := bytes.IndexByte(ln, ':')
	if colon < 0 {
		return fmt.Errorf("sipmsg: malformed header line %q", ln)
	}
	name := trimASCII(ln[:colon])
	value := trimASCII(ln[colon+1:])
	id, canon := lookupHeader(name)
	switch id {
	case hdrVia:
		return m.parseViaLine(value)
	case hdrFrom:
		na, err := ParseNameAddr(string(value))
		if err != nil {
			return fmt.Errorf("sipmsg: From: %w", err)
		}
		m.From = na
	case hdrTo:
		na, err := ParseNameAddr(string(value))
		if err != nil {
			return fmt.Errorf("sipmsg: To: %w", err)
		}
		m.To = na
	case hdrCallID:
		m.CallID = string(value)
	case hdrCSeq:
		cs, err := parseCSeqBytes(value)
		if err != nil {
			return err
		}
		m.CSeq = cs
	case hdrContact:
		na, err := ParseNameAddr(string(value))
		if err != nil {
			return fmt.Errorf("sipmsg: Contact: %w", err)
		}
		m.Contact = &na
	case hdrMaxForwards:
		n, err := atoiBytes(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sipmsg: bad Max-Forwards %q", value)
		}
		m.MaxForwards = n
	case hdrExpires:
		n, err := atoiBytes(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sipmsg: bad Expires %q", value)
		}
		m.Expires = n
	case hdrContentType:
		m.ContentType = string(value)
	case hdrContentLength:
		n, err := atoiBytes(value)
		if err != nil || n < 0 {
			return fmt.Errorf("sipmsg: bad Content-Length %q", value)
		}
		*contentLength = n
	default:
		if canon == "" {
			canon = canonicalizeBytes(name)
		}
		if m.Other == nil {
			m.Other = make(map[string][]string)
		}
		m.Other[canon] = append(m.Other[canon], string(value))
	}
	return nil
}

// parseViaLine splits a Via value on top-level commas (outside quotes
// and angle brackets) and appends each entry.
//
//vids:alloc-ok Via entries are materialized per header; bounded by maxSIPParseAllocs
func (m *Message) parseViaLine(value []byte) error {
	start, depth := 0, 0
	inQuote := false
	for i := 0; i <= len(value); i++ {
		if i < len(value) {
			c := value[i]
			if c == '"' {
				inQuote = !inQuote
				continue
			}
			if inQuote {
				continue
			}
			if c == '<' {
				depth++
				continue
			}
			if c == '>' {
				if depth > 0 {
					depth--
				}
				continue
			}
			if c != ',' || depth != 0 {
				continue
			}
		}
		v, err := ParseVia(string(trimASCII(value[start:i]))) //vids:panic-ok start is 0 or i+1 for an earlier loop index, so 0 ≤ start ≤ i ≤ len(value)
		if err != nil {
			return err
		}
		m.Via = append(m.Via, v)
		start = i + 1
	}
	return nil
}

//vids:alloc-ok URI/status materialization plus malformed-line error paths; bounded by maxSIPParseAllocs
func parseStartLineBytes(m *Message, line []byte) error {
	line = trimASCII(line)
	if len(line) > len(sipVersion) &&
		string(line[:len(sipVersion)]) == sipVersion && line[len(sipVersion)] == ' ' {
		// Status line: SIP/2.0 200 OK
		rest := line[len(sipVersion)+1:]
		codePart := rest
		var reason []byte
		if sp := bytes.IndexByte(rest, ' '); sp >= 0 {
			codePart, reason = rest[:sp], rest[sp+1:]
		}
		code, err := atoiBytes(codePart)
		if err != nil || code < 100 || code > 699 {
			return fmt.Errorf("sipmsg: bad status line %q", line)
		}
		m.StatusCode = code
		m.Reason = string(reason)
		return nil
	}
	// Request line: INVITE sip:bob@b.com SIP/2.0
	var fields [3][]byte
	n := 0
	rest := line
	for len(rest) > 0 {
		for len(rest) > 0 && asciiSpace(rest[0]) {
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		j := 0
		for j < len(rest) && !asciiSpace(rest[j]) {
			j++
		}
		if n >= len(fields) {
			return fmt.Errorf("sipmsg: bad request line %q", line)
		}
		if j < len(rest) {
			fields[n] = rest[:j]
			rest = rest[j:]
		} else {
			fields[n] = rest
			rest = rest[:0]
		}
		n++
	}
	if n != 3 || string(fields[2]) != sipVersion {
		return fmt.Errorf("sipmsg: bad request line %q", line)
	}
	uri, err := ParseURI(string(fields[1]))
	if err != nil {
		return err
	}
	m.Method = internMethod(fields[0])
	m.RequestURI = uri
	return nil
}

// parseCSeqBytes parses a CSeq value ("314159 INVITE") without
// intermediate strings; known methods are interned.
//
//vids:alloc-ok allocates only for malformed CSeq lines, which abort the packet
func parseCSeqBytes(b []byte) (CSeq, error) {
	var f0, f1 []byte
	n := 0
	rest := b
	for len(rest) > 0 {
		for len(rest) > 0 && asciiSpace(rest[0]) {
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		j := 0
		for j < len(rest) && !asciiSpace(rest[j]) {
			j++
		}
		field := rest
		if j < len(rest) {
			field, rest = rest[:j], rest[j:]
		} else {
			rest = rest[:0]
		}
		switch n {
		case 0:
			f0 = field
		case 1:
			f1 = field
		default:
			return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: want <seq> <method>", b)
		}
		n++
	}
	if n != 2 {
		return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: want <seq> <method>", b)
	}
	var seq uint64
	for _, c := range f0 {
		if c < '0' || c > '9' {
			return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: bad sequence number", b)
		}
		seq = seq*10 + uint64(c-'0')
		if seq > 1<<32-1 {
			return CSeq{}, fmt.Errorf("sipmsg: CSeq %q: bad sequence number", b)
		}
	}
	return CSeq{Seq: uint32(seq), Method: internMethod(f1)}, nil
}

// internMethod returns the shared constant for known methods so the
// hot path never allocates a method string.
//
//vids:alloc-ok unknown methods only; the static table covers every RFC 3261 method
func internMethod(b []byte) Method {
	for _, k := range KnownMethods {
		if string(b) == string(k) {
			return k
		}
	}
	return Method(b)
}

// lookupHeader resolves a header name (case-insensitively, including
// compact forms) without allocating. For known-but-unmodeled headers
// it returns hdrOther with the canonical name; for unknown ones the
// canonical name is empty and computed by the caller.
func lookupHeader(name []byte) (int, string) {
	switch len(name) {
	case 1:
		switch lowerByte(name[0]) {
		case 'v':
			return hdrVia, "Via"
		case 'f':
			return hdrFrom, "From"
		case 't':
			return hdrTo, "To"
		case 'i':
			return hdrCallID, "Call-ID"
		case 'm':
			return hdrContact, "Contact"
		case 'c':
			return hdrContentType, "Content-Type"
		case 'l':
			return hdrContentLength, "Content-Length"
		}
	case 2:
		if foldEq(name, "to") {
			return hdrTo, "To"
		}
	case 3:
		if foldEq(name, "via") {
			return hdrVia, "Via"
		}
	case 4:
		if foldEq(name, "from") {
			return hdrFrom, "From"
		}
		if foldEq(name, "cseq") {
			return hdrCSeq, "CSeq"
		}
	case 7:
		if foldEq(name, "call-id") {
			return hdrCallID, "Call-ID"
		}
		if foldEq(name, "contact") {
			return hdrContact, "Contact"
		}
		if foldEq(name, "expires") {
			return hdrExpires, "Expires"
		}
	case 12:
		if foldEq(name, "content-type") {
			return hdrContentType, "Content-Type"
		}
		if foldEq(name, "max-forwards") {
			return hdrMaxForwards, "Max-Forwards"
		}
	case 13:
		if foldEq(name, "authorization") {
			return hdrOther, "Authorization"
		}
	case 14:
		if foldEq(name, "content-length") {
			return hdrContentLength, "Content-Length"
		}
	case 16:
		if foldEq(name, "www-authenticate") {
			return hdrOther, "WWW-Authenticate"
		}
	}
	return hdrOther, ""
}

// canonicalizeBytes Title-By-Dash-cases an unknown header name,
// mirroring CanonicalHeaderName's fallback for ASCII names.
//
//vids:alloc-ok unknown header names only; known headers hit the static table
func canonicalizeBytes(name []byte) string {
	out := make([]byte, 0, len(name))
	up := true
	for _, c := range name {
		switch {
		case c == '-':
			out = append(out, c)
			up = true
		case up:
			out = append(out, upperByte(c))
			up = false
		default:
			out = append(out, lowerByte(c))
		}
	}
	return string(out)
}

// atoiBytes is strconv.Atoi for byte slices: optional sign, decimal
// digits, error on anything else or overflow.
//
//vids:alloc-ok allocates only for malformed digits, which abort the packet
func atoiBytes(b []byte) (int, error) {
	i, neg := 0, false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, fmt.Errorf("sipmsg: bad number %q", b)
	}
	n := 0
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("sipmsg: bad number %q", b)
		}
		if n > (1<<62)/10 {
			return 0, fmt.Errorf("sipmsg: number %q overflows", b)
		}
		n = n*10 + int(c-'0')
		if n < 0 {
			return 0, fmt.Errorf("sipmsg: number %q overflows", b)
		}
	}
	if neg {
		n = -n
	}
	return n, nil
}

func trimASCII(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

func lowerByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

func upperByte(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - ('a' - 'A')
	}
	return c
}

// foldEq reports whether b equals the (lower-case) name s under ASCII
// case folding.
func foldEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if lowerByte(b[i]) != s[i] {
			return false
		}
	}
	return true
}

// Bytes serializes the message to its wire form with a correct
// Content-Length.
func (m *Message) Bytes() []byte {
	var b strings.Builder
	if m.IsRequest() {
		b.WriteString(string(m.Method))
		b.WriteByte(' ')
		b.WriteString(m.RequestURI.String())
		b.WriteByte(' ')
		b.WriteString(sipVersion)
	} else {
		b.WriteString(sipVersion)
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(m.StatusCode))
		b.WriteByte(' ')
		reason := m.Reason
		if reason == "" {
			reason = ReasonPhrase(m.StatusCode)
		}
		b.WriteString(reason)
	}
	b.WriteString("\r\n")

	for _, v := range m.Via {
		writeHeader(&b, "Via", v.String())
	}
	writeHeader(&b, "From", m.From.String())
	writeHeader(&b, "To", m.To.String())
	writeHeader(&b, "Call-ID", m.CallID)
	writeHeader(&b, "CSeq", m.CSeq.String())
	if m.Contact != nil {
		writeHeader(&b, "Contact", m.Contact.String())
	}
	if m.IsRequest() {
		mf := m.MaxForwards
		if mf < 0 {
			mf = 70
		}
		writeHeader(&b, "Max-Forwards", strconv.Itoa(mf))
	}
	if m.Expires >= 0 {
		writeHeader(&b, "Expires", strconv.Itoa(m.Expires))
	}
	if m.ContentType != "" {
		writeHeader(&b, "Content-Type", m.ContentType)
	}

	if m.Other != nil {
		names := make([]string, 0, len(m.Other))
		for name := range m.Other {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, v := range m.Other[name] {
				writeHeader(&b, name, v)
			}
		}
	}

	writeHeader(&b, "Content-Length", strconv.Itoa(len(m.Body)))
	b.WriteString("\r\n")
	b.Write(m.Body)
	return []byte(b.String())
}

func writeHeader(b *strings.Builder, name, value string) {
	b.WriteString(name)
	b.WriteString(": ")
	b.WriteString(value)
	b.WriteString("\r\n")
}

// WireSize returns the serialized size in bytes. The paper assumes an
// average SIP message size of 500 bytes (Section 7.1); the simulator
// uses real serialized sizes, which land in the same range.
func (m *Message) WireSize() int { return len(m.Bytes()) }
