package sip

import (
	"fmt"
	"time"

	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// CallState tracks the lifecycle of a call at a user agent.
type CallState int

// Call lifecycle states.
const (
	CallCalling  CallState = iota + 1 // INVITE sent, no response yet
	CallRinging                       // 180 received / sent
	CallIncoming                      // INVITE received, not yet answered
	CallEstablished
	CallTerminated // BYE completed
	CallCancelled  // CANCEL completed
	CallFailed     // final non-2xx or timeout
)

func (s CallState) String() string {
	switch s {
	case CallCalling:
		return "Calling"
	case CallRinging:
		return "Ringing"
	case CallIncoming:
		return "Incoming"
	case CallEstablished:
		return "Established"
	case CallTerminated:
		return "Terminated"
	case CallCancelled:
		return "Cancelled"
	case CallFailed:
		return "Failed"
	default:
		return fmt.Sprintf("CallState(%d)", int(s))
	}
}

// Call is one call leg at a UA.
type Call struct {
	ID       string // Call-ID
	Outgoing bool
	State    CallState

	LocalTag      string
	RemoteTag     string
	RemoteURI     sipmsg.URI
	RemoteContact sipmsg.URI

	LocalSDP  *sdp.Description
	RemoteSDP *sdp.Description

	// LocalRTPPort is the media port this leg advertised in its SDP.
	// Each call gets a distinct port so one phone can hold several
	// simultaneous calls (paper Section 3.1).
	LocalRTPPort int

	// Timeline in virtual time; zero-valued fields mean "not yet".
	InviteAt      time.Duration
	RingingAt     time.Duration
	EstablishedAt time.Duration
	EndedAt       time.Duration

	ua          *UA
	inviteTxn   *ClientTxn
	inviteSrv   *ServerTxn
	localCSeq   uint32
	okRetries   int
	ackReceived bool
}

// SetupDelay is the paper's call-setup metric: time from sending the
// INVITE to receiving the 180 Ringing (Section 7.2). ok is false until
// the 180 arrives.
func (c *Call) SetupDelay() (time.Duration, bool) {
	if !c.Outgoing || c.RingingAt == 0 {
		return 0, false
	}
	return c.RingingAt - c.InviteAt, true
}

// Config parameterizes a user agent.
type Config struct {
	User   string // "ua1"
	Host   string // node name, e.g. "ua1.a.example.com"
	Domain string // "a.example.com"
	Proxy  sim.Addr

	RTPPort int
	Payload int // offered codec payload type (default G.729)

	// RingDelay is how long the callee waits before sending 180;
	// AnswerDelay how long it rings before the 200 OK.
	RingDelay   time.Duration
	AnswerDelay time.Duration
	AutoAnswer  bool

	// MaxCalls bounds the simultaneous calls the phone can handle
	// ("IP phones have the capability of generating multiple calls at
	// the same time but can only support a few", paper Section 3.1).
	// Incoming INVITEs beyond the limit are declined 486 Busy Here.
	// Zero means unlimited.
	MaxCalls int

	// SharedSecret, when non-empty, enables digest-style
	// authentication of in-dialog BYEs (RFC 3261 §22): the UAS
	// challenges unauthenticated BYEs with 401 and tears down only
	// for holders of the secret. The paper's threat discussion notes
	// that this stops outsider spoofing but not misbehaving
	// authenticated endpoints (Section 3.1).
	SharedSecret string
}

// UA is a SIP user agent: UAC and UAS combined (paper Section 2.1).
type UA struct {
	cfg   Config
	sim   *sim.Simulator
	tr    *Transport
	txn   *TxnLayer
	idgen *IDGen

	calls   map[string]*Call
	nextRTP int

	// Event hooks, all optional.
	OnIncoming    func(*Call)
	OnRinging     func(*Call)
	OnEstablished func(*Call)
	OnEnded       func(*Call)
	// OnHangingUp fires the moment the local user hangs up (BYE about
	// to be sent), before the teardown handshake completes. Real
	// phones stop their media stream at this instant, not when the
	// 200 OK eventually arrives.
	OnHangingUp func(*Call)

	placed      int
	answered    int
	established int
	failed      int
}

var _ Core = (*UA)(nil)

// NewUA creates and binds a user agent.
func NewUA(s *sim.Simulator, network *sim.Network, cfg Config) (*UA, error) {
	if cfg.Payload == 0 {
		cfg.Payload = sdp.PayloadG729
	}
	if cfg.RTPPort == 0 {
		cfg.RTPPort = 20000
	}
	tr, err := NewTransport(network, cfg.Host, Port)
	if err != nil {
		return nil, err
	}
	ua := &UA{
		cfg:   cfg,
		sim:   s,
		tr:    tr,
		idgen: NewIDGen(s.RNG(), cfg.Host),
		calls: make(map[string]*Call),
	}
	ua.txn = NewTxnLayer(s, tr, ua)
	return ua, nil
}

// Config returns the UA configuration.
func (ua *UA) Config() Config { return ua.cfg }

// Addr returns the UA's SIP transport address.
func (ua *UA) Addr() sim.Addr { return ua.tr.Addr() }

// AOR returns the UA's address-of-record (user@domain).
func (ua *UA) AOR() sipmsg.URI { return sipmsg.URI{User: ua.cfg.User, Host: ua.cfg.Domain} }

// ContactURI returns the UA's device URI (user@host).
func (ua *UA) ContactURI() sipmsg.URI { return sipmsg.URI{User: ua.cfg.User, Host: ua.cfg.Host} }

// Calls returns the UA's call table (live view, keyed by Call-ID).
func (ua *UA) Calls() map[string]*Call { return ua.calls }

// Stats reports (placed, answered, established, failed) call counts.
func (ua *UA) Stats() (placed, answered, established, failed int) {
	return ua.placed, ua.answered, ua.established, ua.failed
}

// Register sends a REGISTER to the configured proxy, binding the AOR
// to the UA's contact.
func (ua *UA) Register() error {
	req := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: ua.cfg.Domain})
	req.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
	req.From = sipmsg.NameAddr{URI: ua.AOR()}.WithTag(ua.idgen.Tag())
	req.To = sipmsg.NameAddr{URI: ua.AOR()}
	req.CallID = ua.idgen.CallID()
	req.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	contact := sipmsg.NameAddr{URI: ua.ContactURI()}
	req.Contact = &contact
	req.Expires = 3600
	_, err := ua.txn.Request(req, ua.cfg.Proxy, nil, nil)
	return err
}

// Invite places a call to the target address-of-record via the
// outbound proxy. The returned Call progresses through the hooks.
func (ua *UA) Invite(target sipmsg.URI) (*Call, error) {
	call := &Call{
		ID:        ua.idgen.CallID(),
		Outgoing:  true,
		State:     CallCalling,
		LocalTag:  ua.idgen.Tag(),
		RemoteURI: target,
		InviteAt:  ua.sim.Now(),
		ua:        ua,
		localCSeq: 1,
	}
	call.LocalRTPPort = ua.allocRTPPort()
	call.LocalSDP = sdp.New(ua.cfg.User, ua.cfg.Host, call.LocalRTPPort, ua.cfg.Payload)

	req := sipmsg.NewRequest(sipmsg.INVITE, target)
	req.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
	req.From = sipmsg.NameAddr{URI: ua.AOR()}.WithTag(call.LocalTag)
	req.To = sipmsg.NameAddr{URI: target}
	req.CallID = call.ID
	req.CSeq = sipmsg.CSeq{Seq: call.localCSeq, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: ua.ContactURI()}
	req.Contact = &contact
	req.ContentType = "application/sdp"
	req.Body = call.LocalSDP.Marshal()

	txn, err := ua.txn.Request(req, ua.cfg.Proxy,
		func(resp *sipmsg.Message) { ua.onInviteResponse(call, resp) },
		func() { ua.endCall(call, CallFailed) },
	)
	if err != nil {
		return nil, err
	}
	call.inviteTxn = txn
	ua.calls[call.ID] = call
	ua.placed++
	return call, nil
}

func (ua *UA) onInviteResponse(call *Call, resp *sipmsg.Message) {
	switch {
	case resp.IsProvisional():
		if resp.StatusCode == sipmsg.StatusRinging && call.State == CallCalling {
			call.State = CallRinging
			call.RingingAt = ua.sim.Now()
			if ua.OnRinging != nil {
				ua.OnRinging(call)
			}
		}
	case resp.IsSuccess():
		if call.State == CallTerminated || call.State == CallCancelled {
			return
		}
		call.RemoteTag = resp.To.Tag()
		if resp.Contact != nil {
			call.RemoteContact = resp.Contact.URI
		} else {
			call.RemoteContact = call.RemoteURI
		}
		if len(resp.Body) > 0 {
			if answer, err := sdp.Parse(resp.Body); err == nil {
				call.RemoteSDP = answer
			}
		}
		ua.sendAck(call)
		if call.State != CallEstablished {
			call.State = CallEstablished
			call.EstablishedAt = ua.sim.Now()
			ua.established++
			if ua.OnEstablished != nil {
				ua.OnEstablished(call)
			}
		}
	default:
		// Final non-2xx.
		if call.State == CallCalling || call.State == CallRinging {
			state := CallFailed
			if resp.StatusCode == sipmsg.StatusRequestTerminated {
				state = CallCancelled
			}
			ua.endCall(call, state)
		}
	}
}

// sendAck transmits the 2xx ACK end-to-end to the remote contact.
func (ua *UA) sendAck(call *Call) {
	ack := sipmsg.NewRequest(sipmsg.ACK, call.RemoteContact)
	ack.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
	ack.From = sipmsg.NameAddr{URI: ua.AOR()}.WithTag(call.LocalTag)
	ack.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	ack.CallID = call.ID
	ack.CSeq = sipmsg.CSeq{Seq: call.localCSeq, Method: sipmsg.ACK}
	_ = ua.tr.Send(AddrForURI(call.RemoteContact), ack)
}

// Bye tears down an established call: an end-to-end BYE to the remote
// contact (paper Section 3.1). When the deployment uses shared-secret
// authentication, the first BYE draws a 401 challenge and is retried
// with credentials.
func (ua *UA) Bye(call *Call) error {
	if call.State != CallEstablished {
		return fmt.Errorf("sip: Bye on %s call %s", call.State, call.ID)
	}
	if ua.OnHangingUp != nil {
		ua.OnHangingUp(call)
	}
	return ua.sendBye(call, "")
}

func (ua *UA) sendBye(call *Call, nonce string) error {
	call.localCSeq++
	req := sipmsg.NewRequest(sipmsg.BYE, call.RemoteContact)
	req.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
	req.From = sipmsg.NameAddr{URI: ua.AOR()}.WithTag(call.LocalTag)
	req.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	req.CallID = call.ID
	req.CSeq = sipmsg.CSeq{Seq: call.localCSeq, Method: sipmsg.BYE}
	if nonce != "" && ua.cfg.SharedSecret != "" {
		authorize(req, ua.cfg.User, ua.cfg.SharedSecret, nonce)
	}

	_, err := ua.txn.Request(req, AddrForURI(call.RemoteContact),
		func(resp *sipmsg.Message) {
			switch {
			case resp.StatusCode == sipmsg.StatusUnauthorized && nonce == "":
				if vals := resp.Other["WWW-Authenticate"]; len(vals) > 0 {
					if n, ok := parseChallenge(vals[0]); ok {
						_ = ua.sendBye(call, n)
						return
					}
				}
				ua.endCall(call, CallFailed)
			case resp.IsFinal():
				ua.endCall(call, CallTerminated)
			}
		},
		func() {
			// No response at all: consider the dialog dead locally.
			ua.endCall(call, CallTerminated)
		})
	return err
}

// Reinvite sends an in-dialog INVITE that refreshes the established
// session (the hold/resume flow; paper Section 2.1: "unless it is
// explicitly requested through a re-invite message").
func (ua *UA) Reinvite(call *Call) error {
	if call.State != CallEstablished {
		return fmt.Errorf("sip: Reinvite on %s call %s", call.State, call.ID)
	}
	call.localCSeq++
	req := sipmsg.NewRequest(sipmsg.INVITE, call.RemoteContact)
	req.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
	req.From = sipmsg.NameAddr{URI: ua.AOR()}.WithTag(call.LocalTag)
	req.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	req.CallID = call.ID
	req.CSeq = sipmsg.CSeq{Seq: call.localCSeq, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: ua.ContactURI()}
	req.Contact = &contact
	req.ContentType = "application/sdp"
	req.Body = call.LocalSDP.Marshal()

	seq := call.localCSeq
	_, err := ua.txn.Request(req, AddrForURI(call.RemoteContact),
		func(resp *sipmsg.Message) {
			if resp.IsSuccess() && call.State == CallEstablished {
				ack := sipmsg.NewRequest(sipmsg.ACK, call.RemoteContact)
				ack.Via = []sipmsg.Via{ViaFor(ua.Addr(), ua.idgen.Branch())}
				ack.From = req.From
				ack.To = resp.To
				ack.CallID = call.ID
				ack.CSeq = sipmsg.CSeq{Seq: seq, Method: sipmsg.ACK}
				_ = ua.tr.Send(AddrForURI(call.RemoteContact), ack)
			}
		}, nil)
	return err
}

// Cancel aborts a pending outgoing INVITE (RFC 3261 §9.1): same
// branch, same CSeq number with method CANCEL, routed like the INVITE.
func (ua *UA) Cancel(call *Call) error {
	if call.State != CallCalling && call.State != CallRinging {
		return fmt.Errorf("sip: Cancel on %s call %s", call.State, call.ID)
	}
	inv := call.inviteTxn.Request()
	req := sipmsg.NewRequest(sipmsg.CANCEL, inv.RequestURI)
	req.Via = []sipmsg.Via{inv.TopVia()}
	req.From = inv.From
	req.To = inv.To
	req.CallID = inv.CallID
	req.CSeq = sipmsg.CSeq{Seq: inv.CSeq.Seq, Method: sipmsg.CANCEL}
	_, err := ua.txn.Request(req, ua.cfg.Proxy, func(resp *sipmsg.Message) {}, nil)
	return err
}

// Answer accepts a ringing incoming call immediately (used when
// AutoAnswer is off).
func (ua *UA) Answer(call *Call) error {
	if call.State != CallIncoming && call.State != CallRinging {
		return fmt.Errorf("sip: Answer on %s call %s", call.State, call.ID)
	}
	ua.answer(call)
	return nil
}

// Decline rejects an incoming call with the given final status code
// (e.g. 486 Busy Here when the callee is already on the phone).
func (ua *UA) Decline(call *Call, code int) error {
	if call.State != CallIncoming && call.State != CallRinging {
		return fmt.Errorf("sip: Decline on %s call %s", call.State, call.ID)
	}
	if code < 300 || code > 699 {
		return fmt.Errorf("sip: Decline with non-final code %d", code)
	}
	st := call.inviteSrv
	if st == nil {
		return fmt.Errorf("sip: Decline on call %s without a pending INVITE", call.ID)
	}
	resp := sipmsg.NewResponse(st.Request(), code)
	resp.To = resp.To.WithTag(call.LocalTag)
	if err := st.Respond(resp); err != nil {
		return err
	}
	ua.endCall(call, CallFailed)
	return nil
}

// HandleRequest implements Core.
func (ua *UA) HandleRequest(st *ServerTxn, req *sipmsg.Message, from sim.Addr) {
	switch req.Method {
	case sipmsg.INVITE:
		ua.handleInvite(st, req)
	case sipmsg.BYE:
		ua.handleBye(st, req)
	case sipmsg.CANCEL:
		ua.handleCancel(st, req)
	case sipmsg.OPTIONS:
		resp := sipmsg.NewResponse(req, sipmsg.StatusOK)
		resp.To = resp.To.WithTag(ua.idgen.Tag())
		_ = st.Respond(resp)
	default:
		resp := sipmsg.NewResponse(req, sipmsg.StatusBadRequest)
		resp.To = resp.To.WithTag(ua.idgen.Tag())
		_ = st.Respond(resp)
	}
}

// ActiveCalls counts call legs not yet in a final state.
func (ua *UA) ActiveCalls() int {
	n := 0
	for _, c := range ua.calls {
		switch c.State {
		case CallTerminated, CallCancelled, CallFailed:
		default:
			n++
		}
	}
	return n
}

func (ua *UA) handleInvite(st *ServerTxn, req *sipmsg.Message) {
	if existing, ok := ua.calls[req.CallID]; ok && req.To.Tag() != "" {
		// Re-INVITE within an existing dialog: accept, echoing our
		// current SDP. (This is the surface the paper's call-hijack
		// discussion targets; vids, not the UA, flags it.)
		resp := sipmsg.NewResponse(req, sipmsg.StatusOK)
		if existing.LocalSDP != nil {
			resp.ContentType = "application/sdp"
			resp.Body = existing.LocalSDP.Marshal()
		}
		contact := sipmsg.NameAddr{URI: ua.ContactURI()}
		resp.Contact = &contact
		_ = st.Respond(resp)
		return
	}

	if ua.cfg.MaxCalls > 0 && ua.ActiveCalls() >= ua.cfg.MaxCalls {
		// The phone is saturated: decline immediately.
		resp := sipmsg.NewResponse(req, sipmsg.StatusBusyHere)
		resp.To = resp.To.WithTag(ua.idgen.Tag())
		_ = st.Respond(resp)
		return
	}

	call := &Call{
		ID:        req.CallID,
		State:     CallIncoming,
		LocalTag:  ua.idgen.Tag(),
		RemoteTag: req.From.Tag(),
		RemoteURI: req.From.URI,
		InviteAt:  ua.sim.Now(),
		ua:        ua,
		inviteSrv: st,
	}
	if req.Contact != nil {
		call.RemoteContact = req.Contact.URI
	} else {
		call.RemoteContact = req.From.URI
	}
	if len(req.Body) > 0 {
		if offer, err := sdp.Parse(req.Body); err == nil {
			call.RemoteSDP = offer
		}
	}
	call.LocalRTPPort = ua.allocRTPPort()
	call.LocalSDP = sdp.New(ua.cfg.User, ua.cfg.Host, call.LocalRTPPort, ua.cfg.Payload)
	ua.calls[call.ID] = call
	if ua.OnIncoming != nil {
		ua.OnIncoming(call)
	}
	if call.State != CallIncoming {
		return // the hook already resolved the call
	}

	ua.sim.Schedule(ua.cfg.RingDelay, func() {
		if call.State != CallIncoming {
			return
		}
		resp := sipmsg.NewResponse(req, sipmsg.StatusRinging)
		resp.To = resp.To.WithTag(call.LocalTag)
		_ = st.Respond(resp)
		call.State = CallRinging
		call.RingingAt = ua.sim.Now()
		if ua.OnRinging != nil {
			ua.OnRinging(call)
		}
		if ua.cfg.AutoAnswer {
			ua.sim.Schedule(ua.cfg.AnswerDelay, func() {
				if call.State == CallRinging {
					ua.answer(call)
				}
			})
		}
	})
}

// answer sends the 200 OK with the SDP answer and starts the
// TU-level 2xx retransmission machinery (RFC 3261 §13.3.1.4).
func (ua *UA) answer(call *Call) {
	st := call.inviteSrv
	if st == nil {
		return
	}
	resp := sipmsg.NewResponse(st.Request(), sipmsg.StatusOK)
	resp.To = resp.To.WithTag(call.LocalTag)
	contact := sipmsg.NameAddr{URI: ua.ContactURI()}
	resp.Contact = &contact
	resp.ContentType = "application/sdp"
	resp.Body = call.LocalSDP.Marshal()
	peer := st.Peer()
	if err := st.Respond(resp); err != nil {
		return
	}
	ua.answered++
	call.State = CallEstablished
	call.EstablishedAt = ua.sim.Now()
	if ua.OnEstablished != nil {
		ua.OnEstablished(call)
	}
	ua.retransmit200(call, resp, peer, TimerT1)
}

// retransmit200 resends the 2xx until the ACK arrives or the retry
// budget is spent.
func (ua *UA) retransmit200(call *Call, resp *sipmsg.Message, peer sim.Addr, interval time.Duration) {
	ua.sim.Schedule(interval, func() {
		if call.ackReceived || call.State != CallEstablished {
			return
		}
		call.okRetries++
		if call.okRetries > 7 {
			// No ACK ever arrived; give up and tear down locally.
			ua.endCall(call, CallFailed)
			return
		}
		_ = ua.tr.Send(peer, resp)
		next := interval * 2
		if next > TimerT2 {
			next = TimerT2
		}
		ua.retransmit200(call, resp, peer, next)
	})
}

func (ua *UA) handleBye(st *ServerTxn, req *sipmsg.Message) {
	call, ok := ua.calls[req.CallID]
	if !ok {
		resp := sipmsg.NewResponse(req, sipmsg.StatusCallDoesNotExist)
		_ = st.Respond(resp)
		return
	}
	if ua.cfg.SharedSecret != "" {
		// Authenticated deployment: challenge BYEs that lack valid
		// credentials for this dialog.
		nonce := challenge(call.ID, call.LocalTag)
		if !verifyAuthorization(req, ua.cfg.SharedSecret, nonce) {
			resp := sipmsg.NewResponse(req, sipmsg.StatusUnauthorized)
			if resp.Other == nil {
				resp.Other = make(map[string][]string)
			}
			resp.Other["WWW-Authenticate"] = []string{buildChallenge(nonce)}
			_ = st.Respond(resp)
			return
		}
	}
	// Note: without authentication the UA honors any BYE for a known
	// call — it cannot tell a spoofed BYE from a genuine one. That is
	// exactly the BYE DoS vulnerability of paper Section 3.1;
	// detection is vids' job, not the UA's.
	resp := sipmsg.NewResponse(req, sipmsg.StatusOK)
	_ = st.Respond(resp)
	if call.State == CallEstablished || call.State == CallRinging || call.State == CallIncoming {
		ua.endCall(call, CallTerminated)
	}
}

func (ua *UA) handleCancel(st *ServerTxn, req *sipmsg.Message) {
	// Respond 200 to the CANCEL itself (RFC 3261 §9.2)...
	resp := sipmsg.NewResponse(req, sipmsg.StatusOK)
	_ = st.Respond(resp)

	call, ok := ua.calls[req.CallID]
	if !ok {
		return
	}
	// ...then answer the pending INVITE with 487.
	if call.inviteSrv != nil && (call.State == CallIncoming || call.State == CallRinging) {
		inv487 := sipmsg.NewResponse(call.inviteSrv.Request(), sipmsg.StatusRequestTerminated)
		inv487.To = inv487.To.WithTag(call.LocalTag)
		_ = call.inviteSrv.Respond(inv487)
		ua.endCall(call, CallCancelled)
	}
}

// HandleStray implements Core: ACKs for 2xx finals and retransmitted
// 200 OKs arrive outside any transaction.
func (ua *UA) HandleStray(m *sipmsg.Message, from sim.Addr) {
	call, ok := ua.calls[m.CallID]
	if !ok {
		return
	}
	switch {
	case m.IsRequest() && m.Method == sipmsg.ACK:
		call.ackReceived = true
	case m.IsResponse() && m.IsSuccess() && m.CSeq.Method == sipmsg.INVITE &&
		call.Outgoing && call.State == CallEstablished:
		// Retransmitted 200: our ACK was lost; resend it.
		ua.sendAck(call)
	}
}

// endCall finalizes a call's state and fires the ended hook once.
func (ua *UA) endCall(call *Call, state CallState) {
	if call.State == CallTerminated || call.State == CallCancelled || call.State == CallFailed {
		return
	}
	call.State = state
	call.EndedAt = ua.sim.Now()
	if state == CallFailed {
		ua.failed++
	}
	if ua.OnEnded != nil {
		ua.OnEnded(call)
	}
}

// RemoveCall evicts a finished call from the table (the UA equivalent
// of the fact-base cleanup in paper Section 7.3).
func (ua *UA) RemoveCall(id string) { delete(ua.calls, id) }

// allocRTPPort hands out even media ports starting at the configured
// base, one pair per call.
func (ua *UA) allocRTPPort() int {
	p := ua.cfg.RTPPort + 2*ua.nextRTP
	ua.nextRTP++
	return p
}
