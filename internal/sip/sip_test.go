package sip

import (
	"testing"
	"time"

	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// testbed is a miniature two-domain deployment: ua1@a and ua2@b with a
// proxy per domain, star-wired through a core router.
type testbed struct {
	sim    *sim.Simulator
	net    *sim.Network
	proxyA *Proxy
	proxyB *Proxy
	alice  *UA
	bob    *UA
}

func newTestbed(t *testing.T, link sim.LinkConfig) *testbed {
	t.Helper()
	s := sim.New(7)
	n := sim.NewNetwork(s)
	hosts := []string{"ua1.a.example.com", "ua2.b.example.com",
		"proxy.a.example.com", "proxy.b.example.com"}
	for _, h := range hosts {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddRouter("core"); err != nil {
		t.Fatal(err)
	}
	for _, h := range hosts {
		if err := n.Connect(h, "core", link); err != nil {
			t.Fatal(err)
		}
	}

	proxyA, err := NewProxy(n, "proxy.a.example.com", "a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	proxyB, err := NewProxy(n, "proxy.b.example.com", "b.example.com")
	if err != nil {
		t.Fatal(err)
	}
	proxyA.AddPeer("b.example.com", proxyB.Addr())
	proxyB.AddPeer("a.example.com", proxyA.Addr())

	alice, err := NewUA(s, n, Config{
		User: "alice", Host: "ua1.a.example.com", Domain: "a.example.com",
		Proxy: proxyA.Addr(), RTPPort: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	bob, err := NewUA(s, n, Config{
		User: "bob", Host: "ua2.b.example.com", Domain: "b.example.com",
		Proxy: proxyB.Addr(), RTPPort: 20002,
		RingDelay: 100 * time.Millisecond, AnswerDelay: 2 * time.Second,
		AutoAnswer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb := &testbed{sim: s, net: n, proxyA: proxyA, proxyB: proxyB, alice: alice, bob: bob}
	if err := alice.Register(); err != nil {
		t.Fatal(err)
	}
	if err := bob.Register(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	return tb
}

func fastLink() sim.LinkConfig {
	return sim.LinkConfig{Bandwidth: 100e6, PropDelay: time.Millisecond}
}

func TestRegisterBindsContact(t *testing.T) {
	tb := newTestbed(t, fastLink())
	got, ok := tb.proxyB.Lookup("bob")
	if !ok {
		t.Fatal("bob not registered")
	}
	if got.Host != "ua2.b.example.com" {
		t.Fatalf("contact = %v", got)
	}
	if _, _, regs, _ := tb.proxyB.Stats(); regs != 1 {
		t.Fatalf("registrations = %d", regs)
	}
}

func TestBasicCallFlow(t *testing.T) {
	tb := newTestbed(t, fastLink())
	var events []string
	tb.alice.OnRinging = func(c *Call) { events = append(events, "ringing") }
	tb.alice.OnEstablished = func(c *Call) { events = append(events, "established") }
	tb.bob.OnEstablished = func(c *Call) { events = append(events, "bob-established") }

	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	if call.State != CallEstablished {
		t.Fatalf("call state = %v", call.State)
	}
	if len(events) < 3 {
		t.Fatalf("events = %v", events)
	}
	if events[0] != "ringing" {
		t.Fatalf("first event = %q", events[0])
	}

	// The callee leg must exist and be established too.
	bobCall, ok := tb.bob.Calls()[call.ID]
	if !ok {
		t.Fatal("bob has no call leg")
	}
	if bobCall.State != CallEstablished {
		t.Fatalf("bob call state = %v", bobCall.State)
	}
	if !bobCall.ackReceived {
		t.Fatal("bob never saw the ACK")
	}

	// SDP offer/answer must have crossed.
	if call.RemoteSDP == nil || bobCall.RemoteSDP == nil {
		t.Fatal("SDP not exchanged")
	}
	m, _ := call.RemoteSDP.FirstAudio()
	if m.Port != 20002 {
		t.Fatalf("answer media port = %d", m.Port)
	}
	if call.RemoteSDP.Address != "ua2.b.example.com" {
		t.Fatalf("answer media address = %q", call.RemoteSDP.Address)
	}

	// Setup delay (INVITE -> 180) must reflect ring delay + network.
	d, ok := call.SetupDelay()
	if !ok {
		t.Fatal("no setup delay recorded")
	}
	if d < 100*time.Millisecond || d > 300*time.Millisecond {
		t.Fatalf("setup delay = %v", d)
	}

	// Dialog identifiers must agree across the two legs.
	if call.RemoteTag != bobCall.LocalTag || call.LocalTag != bobCall.RemoteTag {
		t.Fatal("dialog tags do not line up")
	}
}

func TestCallTeardownWithBye(t *testing.T) {
	tb := newTestbed(t, fastLink())
	var endedAtBob *Call
	tb.bob.OnEnded = func(c *Call) { endedAtBob = c }

	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.Schedule(10*time.Second, func() {
		if err := tb.alice.Bye(call); err != nil {
			t.Errorf("Bye: %v", err)
		}
	})
	if err := tb.sim.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallTerminated {
		t.Fatalf("caller state = %v", call.State)
	}
	if endedAtBob == nil || endedAtBob.State != CallTerminated {
		t.Fatalf("callee not terminated: %+v", endedAtBob)
	}
}

func TestCancelPendingInvite(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel while ringing (bob answers only after 2s).
	tb.sim.Schedule(500*time.Millisecond, func() {
		if err := tb.alice.Cancel(call); err != nil {
			t.Errorf("Cancel: %v", err)
		}
	})
	if err := tb.sim.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallCancelled {
		t.Fatalf("caller state = %v, want Cancelled", call.State)
	}
	bobCall := tb.bob.Calls()[call.ID]
	if bobCall == nil || bobCall.State != CallCancelled {
		t.Fatalf("callee state = %v, want Cancelled", bobCall)
	}
}

func TestCallToUnknownUserFails(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "nobody", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallFailed {
		t.Fatalf("state = %v, want Failed", call.State)
	}
}

func TestCallToUnknownDomainFails(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "x", Host: "c.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallFailed {
		t.Fatalf("state = %v, want Failed", call.State)
	}
}

func TestCallSurvivesLossyLink(t *testing.T) {
	// 20% loss: retransmission timers must still complete the call.
	lossy := sim.LinkConfig{Bandwidth: 100e6, PropDelay: time.Millisecond, LossProb: 0.2}
	tb := newTestbed(t, lossy)
	established := 0
	tb.alice.OnEstablished = func(c *Call) { established++ }
	for i := 0; i < 5; i++ {
		if _, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.sim.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if established < 4 {
		t.Fatalf("established %d/5 calls on 20%% lossy link", established)
	}
}

func TestInviteTimeoutWhenCalleeUnreachable(t *testing.T) {
	// Island topology: alice's proxy knows the peer domain but the
	// peer proxy host doesn't exist -> proxy send fails silently,
	// alice's INVITE times out via timer B.
	s := sim.New(3)
	n := sim.NewNetwork(s)
	for _, h := range []string{"ua1.a.example.com", "proxy.a.example.com"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("ua1.a.example.com", "proxy.a.example.com", fastLink()); err != nil {
		t.Fatal(err)
	}
	proxyA, err := NewProxy(n, "proxy.a.example.com", "a.example.com")
	if err != nil {
		t.Fatal(err)
	}
	proxyA.AddPeer("b.example.com", sim.Addr{Host: "proxy.b.example.com", Port: Port})
	alice, err := NewUA(s, n, Config{
		User: "alice", Host: "ua1.a.example.com", Domain: "a.example.com",
		Proxy: proxyA.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	call, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(64*TimerT1 + time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallFailed {
		t.Fatalf("state = %v, want Failed after timer B", call.State)
	}
}

func TestByeOnNonEstablishedCallRejected(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.alice.Bye(call); err == nil {
		t.Fatal("Bye on a calling-state call accepted")
	}
}

func TestManualAnswer(t *testing.T) {
	s := sim.New(9)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a.host", "b.host"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("a.host", "b.host", fastLink()); err != nil {
		t.Fatal(err)
	}
	// Direct UA-to-UA call (no proxy): alice's "proxy" is bob.
	bob, err := NewUA(s, n, Config{
		User: "bob", Host: "b.host", Domain: "b.host", AutoAnswer: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewUA(s, n, Config{
		User: "alice", Host: "a.host", Domain: "a.host",
		Proxy: bob.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var incoming *Call
	bob.OnIncoming = func(c *Call) { incoming = c }
	call, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.host"})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(3*time.Second, func() {
		if incoming == nil {
			t.Error("no incoming call at bob")
			return
		}
		if err := bob.Answer(incoming); err != nil {
			t.Errorf("Answer: %v", err)
		}
	})
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallEstablished {
		t.Fatalf("state = %v", call.State)
	}
}

func TestReInviteAnswered(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallEstablished {
		t.Fatalf("setup failed: %v", call.State)
	}

	// Craft a re-INVITE inside the dialog, end-to-end.
	reinvite := sipmsg.NewRequest(sipmsg.INVITE, call.RemoteContact)
	reinvite.Via = []sipmsg.Via{ViaFor(tb.alice.Addr(), "z9hG4bKreinv")}
	reinvite.From = sipmsg.NameAddr{URI: tb.alice.AOR()}.WithTag(call.LocalTag)
	reinvite.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	reinvite.CallID = call.ID
	reinvite.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.INVITE}
	reinvite.ContentType = "application/sdp"
	reinvite.Body = call.LocalSDP.Marshal()

	var status int
	if _, err := tb.alice.txn.Request(reinvite, AddrForURI(call.RemoteContact),
		func(resp *sipmsg.Message) { status = resp.StatusCode }, nil); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if status != sipmsg.StatusOK {
		t.Fatalf("re-INVITE status = %d", status)
	}
}

func TestTransactionStatesOnTimeout(t *testing.T) {
	// A request into the void must retransmit and then time out.
	s := sim.New(1)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a.host", "sink.host"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("a.host", "sink.host", fastLink()); err != nil {
		t.Fatal(err)
	}
	// sink.host binds nothing: all datagrams vanish.
	tr, err := NewTransport(n, "a.host", Port)
	if err != nil {
		t.Fatal(err)
	}
	var timedOut bool
	layer := NewTxnLayer(s, tr, nopCore{})

	req := sipmsg.NewRequest(sipmsg.OPTIONS, sipmsg.URI{Host: "sink.host"})
	req.Via = []sipmsg.Via{ViaFor(tr.Addr(), "z9hG4bKtimeout")}
	req.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.host"}}.WithTag("t")
	req.To = sipmsg.NameAddr{URI: sipmsg.URI{Host: "sink.host"}}
	req.CallID = "x@a.host"
	req.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.OPTIONS}

	ct, err := layer.Request(req, sim.Addr{Host: "sink.host", Port: Port},
		nil, func() { timedOut = true })
	if err != nil {
		t.Fatal(err)
	}
	if ct.State() != TxnTrying {
		t.Fatalf("initial state = %v", ct.State())
	}
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("timer F did not fire")
	}
	if ct.State() != TxnTerminated {
		t.Fatalf("final state = %v", ct.State())
	}
	if layer.ActiveTransactions() != 0 {
		t.Fatalf("transactions leaked: %d", layer.ActiveTransactions())
	}
}

type nopCore struct{}

func (nopCore) HandleRequest(st *ServerTxn, req *sipmsg.Message, from sim.Addr) {}
func (nopCore) HandleStray(m *sipmsg.Message, from sim.Addr)                    {}

func TestDuplicateClientTransactionRejected(t *testing.T) {
	s := sim.New(1)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a.host", "b.host"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("a.host", "b.host", fastLink()); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTransport(n, "a.host", Port)
	if err != nil {
		t.Fatal(err)
	}
	layer := NewTxnLayer(s, tr, nopCore{})
	req := sipmsg.NewRequest(sipmsg.OPTIONS, sipmsg.URI{Host: "b.host"})
	req.Via = []sipmsg.Via{ViaFor(tr.Addr(), "z9hG4bKdup")}
	req.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.host"}}.WithTag("t")
	req.To = sipmsg.NameAddr{URI: sipmsg.URI{Host: "b.host"}}
	req.CallID = "dup@a.host"
	req.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.OPTIONS}
	dest := sim.Addr{Host: "b.host", Port: Port}
	if _, err := layer.Request(req, dest, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := layer.Request(req, dest, nil, nil); err == nil {
		t.Fatal("duplicate transaction accepted")
	}
}

func TestIDGenShapes(t *testing.T) {
	g := NewIDGen(sim.NewRNG(1), "h.example.com")
	b := g.Branch()
	if len(b) != len("z9hG4bK")+10 || b[:7] != "z9hG4bK" {
		t.Fatalf("branch = %q", b)
	}
	if tag := g.Tag(); len(tag) != 8 {
		t.Fatalf("tag = %q", tag)
	}
	cid := g.CallID()
	if len(cid) != 12+1+len("h.example.com") {
		t.Fatalf("call-id = %q", cid)
	}
	// Distinctness.
	if g.Branch() == g.Branch() {
		t.Fatal("branches collide")
	}
	if g.SSRC() == g.SSRC() {
		t.Fatal("SSRCs collide")
	}
}

func TestTxnStateString(t *testing.T) {
	for st, want := range map[TxnState]string{
		TxnCalling: "Calling", TxnTrying: "Trying", TxnProceeding: "Proceeding",
		TxnCompleted: "Completed", TxnConfirmed: "Confirmed", TxnTerminated: "Terminated",
		TxnState(42): "TxnState(42)",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", int(st), st.String())
		}
	}
}

func TestCallStateString(t *testing.T) {
	for st, want := range map[CallState]string{
		CallCalling: "Calling", CallRinging: "Ringing", CallIncoming: "Incoming",
		CallEstablished: "Established", CallTerminated: "Terminated",
		CallCancelled: "Cancelled", CallFailed: "Failed", CallState(42): "CallState(42)",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", int(st), st.String())
		}
	}
}

func TestUAStatsCounters(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	tb.sim.Schedule(10*time.Second, func() { _ = tb.alice.Bye(call) })
	if err := tb.sim.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	placed, _, established, failed := tb.alice.Stats()
	if placed != 1 || established != 1 || failed != 0 {
		t.Fatalf("alice stats = %d/%d/%d", placed, established, failed)
	}
	_, answered, _, _ := tb.bob.Stats()
	if answered != 1 {
		t.Fatalf("bob answered = %d", answered)
	}
}

func TestSDPDefaultsApplied(t *testing.T) {
	s := sim.New(1)
	n := sim.NewNetwork(s)
	if err := n.AddHost("h.x"); err != nil {
		t.Fatal(err)
	}
	ua, err := NewUA(s, n, Config{User: "u", Host: "h.x", Domain: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if ua.Config().Payload != sdp.PayloadG729 {
		t.Fatalf("default payload = %d, want G.729", ua.Config().Payload)
	}
	if ua.Config().RTPPort == 0 {
		t.Fatal("default RTP port not applied")
	}
}

func TestDeclineBusy(t *testing.T) {
	tb := newTestbed(t, fastLink())
	tb.bob.OnIncoming = func(c *Call) {
		if err := tb.bob.Decline(c, sipmsg.StatusBusyHere); err != nil {
			t.Errorf("Decline: %v", err)
		}
	}
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if call.State != CallFailed {
		t.Fatalf("caller state = %v, want Failed after 486", call.State)
	}
	bobCall := tb.bob.Calls()[call.ID]
	if bobCall == nil || bobCall.State != CallFailed {
		t.Fatalf("callee leg = %+v", bobCall)
	}
}

func TestDeclineValidation(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Established call cannot be declined.
	bobCall := tb.bob.Calls()[call.ID]
	if bobCall == nil {
		t.Fatal("no callee leg")
	}
	if err := tb.bob.Decline(bobCall, sipmsg.StatusBusyHere); err == nil {
		t.Fatal("Decline on established call accepted")
	}
}

func TestProxy100TryingQuenchesRetransmissions(t *testing.T) {
	tb := newTestbed(t, fastLink())
	tb.proxyA.SendTrying = true
	tb.proxyB.SendTrying = true

	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	// Before any 180 (bob rings after 100ms), the 100 Trying from the
	// proxy must already have moved the INVITE transaction to
	// Proceeding, cancelling timer-A retransmissions.
	if err := tb.sim.Run(tb.sim.Now() + 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st := call.inviteTxn.State(); st != TxnProceeding {
		t.Fatalf("INVITE txn state = %v, want Proceeding after 100 Trying", st)
	}
	if err := tb.sim.Run(tb.sim.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallEstablished {
		t.Fatalf("call state = %v", call.State)
	}
}

func TestReinviteAPI(t *testing.T) {
	tb := newTestbed(t, fastLink())
	call, err := tb.alice.Invite(sipmsg.URI{User: "bob", Host: "b.example.com"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallEstablished {
		t.Fatalf("setup failed: %v", call.State)
	}
	if err := tb.alice.Reinvite(call); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The call survives the refresh and can still be torn down.
	if call.State != CallEstablished {
		t.Fatalf("state after re-INVITE = %v", call.State)
	}
	if err := tb.alice.Bye(call); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallTerminated {
		t.Fatalf("state after BYE = %v", call.State)
	}
	// Reinvite on a dead call is rejected.
	if err := tb.alice.Reinvite(call); err == nil {
		t.Fatal("Reinvite on terminated call accepted")
	}
}

func TestProxyRejectsExhaustedMaxForwards(t *testing.T) {
	tb := newTestbed(t, fastLink())
	// Hand-craft a request with Max-Forwards 0 straight to proxy B.
	req := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	req.MaxForwards = 0
	req.Via = []sipmsg.Via{ViaFor(tb.alice.Addr(), "z9hG4bKmf0")}
	req.From = sipmsg.NameAddr{URI: tb.alice.AOR()}.WithTag("t")
	req.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	req.CallID = "mf0@x"
	req.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}

	var status int
	tr, err := NewTransport(tb.net, "ua1.a.example.com", 6000)
	if err != nil {
		t.Fatal(err)
	}
	tr.OnMessage(func(m *sipmsg.Message, from sim.Addr) {
		if m.IsResponse() {
			status = m.StatusCode
		}
	})
	req.Via = []sipmsg.Via{ViaFor(tr.Addr(), "z9hG4bKmf0")}
	if err := tr.Send(tb.proxyB.Addr(), req); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if status != sipmsg.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for Max-Forwards 0", status)
	}
}

func TestProxyRejectsRegisterWithoutContact(t *testing.T) {
	tb := newTestbed(t, fastLink())
	tr, err := NewTransport(tb.net, "ua1.a.example.com", 6001)
	if err != nil {
		t.Fatal(err)
	}
	var status int
	tr.OnMessage(func(m *sipmsg.Message, from sim.Addr) {
		if m.IsResponse() {
			status = m.StatusCode
		}
	})
	reg := sipmsg.NewRequest(sipmsg.REGISTER, sipmsg.URI{Host: "a.example.com"})
	reg.Via = []sipmsg.Via{ViaFor(tr.Addr(), "z9hG4bKnoct")}
	reg.From = sipmsg.NameAddr{URI: tb.alice.AOR()}.WithTag("t")
	reg.To = sipmsg.NameAddr{URI: tb.alice.AOR()}
	reg.CallID = "noct@x"
	reg.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.REGISTER}
	if err := tr.Send(tb.proxyA.Addr(), reg); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if status != sipmsg.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for contact-less REGISTER", status)
	}
}

func TestProxyDropsForeignResponse(t *testing.T) {
	tb := newTestbed(t, fastLink())
	_, _, _, rejectedBefore := tb.proxyB.Stats()
	// A response whose top Via is not the proxy: must be dropped.
	resp := &sipmsg.Message{
		StatusCode: 200, Reason: "OK",
		Via: []sipmsg.Via{
			{Transport: "UDP", Host: "somewhere.else", Port: 5060,
				Params: map[string]string{"branch": "z9hG4bKx"}},
			{Transport: "UDP", Host: "ua1.a.example.com", Port: 5060,
				Params: map[string]string{"branch": "z9hG4bKy"}},
		},
		From:   sipmsg.NameAddr{URI: sipmsg.URI{User: "a", Host: "a.example.com"}, Params: map[string]string{"tag": "1"}},
		To:     sipmsg.NameAddr{URI: sipmsg.URI{User: "b", Host: "b.example.com"}, Params: map[string]string{"tag": "2"}},
		CallID: "foreign@x",
		CSeq:   sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE},
	}
	tr, err := NewTransport(tb.net, "ua1.a.example.com", 6002)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(tb.proxyB.Addr(), resp); err != nil {
		t.Fatal(err)
	}
	if err := tb.sim.Run(tb.sim.Now() + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	_, _, _, rejectedAfter := tb.proxyB.Stats()
	if rejectedAfter != rejectedBefore+1 {
		t.Fatalf("rejected = %d -> %d, want +1", rejectedBefore, rejectedAfter)
	}
}

func TestPhoneCapacity486WhenSaturated(t *testing.T) {
	s := sim.New(31)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a.host", "b.host"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Connect("a.host", "b.host", fastLink()); err != nil {
		t.Fatal(err)
	}
	bob, err := NewUA(s, n, Config{
		User: "bob", Host: "b.host", Domain: "b.host",
		AutoAnswer: true, AnswerDelay: 30 * time.Second, // stays ringing
		MaxCalls: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewUA(s, n, Config{
		User: "alice", Host: "a.host", Domain: "a.host", Proxy: bob.Addr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls []*Call
	for i := 0; i < 3; i++ {
		c, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.host"})
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, c)
	}
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Two ring, the third is declined 486.
	ringing, failed := 0, 0
	for _, c := range calls {
		switch c.State {
		case CallRinging:
			ringing++
		case CallFailed:
			failed++
		}
	}
	if ringing != 2 || failed != 1 {
		t.Fatalf("ringing=%d failed=%d, want 2/1", ringing, failed)
	}
	if bob.ActiveCalls() != 2 {
		t.Fatalf("bob active = %d", bob.ActiveCalls())
	}
}
