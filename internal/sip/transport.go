// Package sip implements the SIP protocol machinery the testbed runs:
// a UDP-style transport over the simulated network, RFC 3261 §17
// client and server transactions with the standard timers, user
// agents (UAC/UAS) that set up and tear down calls, and a forwarding
// proxy with a registrar/location service (paper Section 2).
package sip

import (
	"fmt"

	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Port is the well-known SIP port used throughout the testbed.
const Port = 5060

// udpIPOverhead approximates the UDP+IPv4 header bytes added to every
// datagram for link serialization accounting.
const udpIPOverhead = 28

// Transport sends and receives SIP messages over the simulated
// network. Messages cross the network in wire form, so every hop
// exercises the real parser — exactly what an on-path IDS sees.
type Transport struct {
	net  *sim.Network
	host string
	port int

	recv func(m *sipmsg.Message, from sim.Addr)

	sent     uint64
	received uint64
	parseErr uint64
}

// NewTransport binds a SIP transport on host:port.
func NewTransport(net *sim.Network, host string, port int) (*Transport, error) {
	t := &Transport{net: net, host: host, port: port}
	err := net.Bind(host, port, func(pkt *sim.Packet) {
		raw, ok := pkt.Payload.([]byte)
		if !ok {
			t.parseErr++
			return
		}
		m, err := sipmsg.Parse(raw)
		if err != nil {
			t.parseErr++
			return
		}
		t.received++
		if t.recv != nil {
			t.recv(m, pkt.From)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("sip: bind %s:%d: %w", host, port, err)
	}
	return t, nil
}

// Addr returns the local transport address.
func (t *Transport) Addr() sim.Addr { return sim.Addr{Host: t.host, Port: t.port} }

// Network returns the simulated network this transport is bound to.
func (t *Transport) Network() *sim.Network { return t.net }

// OnMessage installs the receive callback.
func (t *Transport) OnMessage(f func(m *sipmsg.Message, from sim.Addr)) { t.recv = f }

// Send serializes and transmits m to the destination address.
func (t *Transport) Send(to sim.Addr, m *sipmsg.Message) error {
	raw := m.Bytes()
	t.sent++
	return t.net.Send(&sim.Packet{
		From:    t.Addr(),
		To:      to,
		Proto:   sim.ProtoSIP,
		Size:    len(raw) + udpIPOverhead,
		Payload: raw,
	})
}

// Stats reports transport counters: messages sent, received, and
// datagrams that failed to parse.
func (t *Transport) Stats() (sent, received, parseErrors uint64) {
	return t.sent, t.received, t.parseErr
}

// IDGen produces the random protocol identifiers SIP needs: branch
// parameters, tags and Call-IDs. It draws from the simulator RNG so
// runs are reproducible.
type IDGen struct {
	rng  *sim.RNG
	host string
}

// NewIDGen creates a generator labeling Call-IDs with host.
func NewIDGen(rng *sim.RNG, host string) *IDGen {
	return &IDGen{rng: rng, host: host}
}

func (g *IDGen) hex(n int) string {
	const digits = "0123456789abcdef"
	b := make([]byte, n)
	for i := range b {
		b[i] = digits[g.rng.Intn(16)]
	}
	return string(b)
}

// Branch returns a new branch parameter with the RFC 3261 magic
// cookie prefix.
func (g *IDGen) Branch() string { return "z9hG4bK" + g.hex(10) }

// Tag returns a new From/To tag.
func (g *IDGen) Tag() string { return g.hex(8) }

// CallID returns a new Call-ID scoped to the generator's host.
func (g *IDGen) CallID() string { return g.hex(12) + "@" + g.host }

// SSRC returns a new RTP synchronization source identifier.
func (g *IDGen) SSRC() uint32 { return uint32(g.rng.Uint64()) }

// AddrForURI resolves a SIP URI to a simulated transport address: the
// URI host is the node name, the port defaults to 5060.
func AddrForURI(u sipmsg.URI) sim.Addr {
	return sim.Addr{Host: u.Host, Port: u.EffectivePort()}
}

// AddrForVia resolves a Via sent-by to a transport address for
// response routing.
func AddrForVia(v sipmsg.Via) sim.Addr {
	port := v.Port
	if port == 0 {
		port = Port
	}
	return sim.Addr{Host: v.Host, Port: port}
}

// ViaFor builds a Via entry for a hop originating at addr.
func ViaFor(addr sim.Addr, branch string) sipmsg.Via {
	return sipmsg.Via{
		Transport: "UDP",
		Host:      addr.Host,
		Port:      addr.Port,
		Params:    map[string]string{"branch": branch},
	}
}
