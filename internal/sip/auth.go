package sip

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"strings"

	"vids/internal/sipmsg"
)

// This file implements a compact HTTP-digest-style authentication
// scheme (RFC 3261 §22) for in-dialog requests. The paper observes
// that most SIP attacks assume "lack of proper authentication" but
// that "many attacks are still possible ... by an authenticated but
// misbehaving UA" (Section 3.1). With authentication enabled, a UAS
// challenges unauthenticated BYEs with 401 and only holders of the
// shared secret can tear a dialog down — which stops outsider
// spoofing, yet does nothing about toll fraud or media-plane attacks.
// Experiment E8 quantifies exactly that.

const (
	authScheme = "Digest"
	authRealm  = "example.com"
)

// challenge produces the server's nonce for a dialog. The nonce is
// derived deterministically from the dialog so retransmitted
// challenges agree (and runs stay reproducible).
func challenge(callID, toTag string) string {
	return digest("nonce", callID, toTag)
}

// authResponse computes the client's credential for a request.
func authResponse(secret, nonce, method, callID string) string {
	return digest(secret, nonce, method, callID)
}

func digest(parts ...string) string {
	h := md5.New()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{':'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// buildAuthorization renders the Authorization header value.
func buildAuthorization(user, nonce, response string) string {
	return fmt.Sprintf("%s username=%q, realm=%q, nonce=%q, response=%q",
		authScheme, user, authRealm, nonce, response)
}

// parseAuthorization extracts (username, nonce, response) from an
// Authorization header value.
func parseAuthorization(v string) (user, nonce, response string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(v), authScheme+" ")
	if !found {
		return "", "", "", false
	}
	fields := make(map[string]string)
	for _, part := range strings.Split(rest, ",") {
		k, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			continue
		}
		fields[strings.TrimSpace(k)] = strings.Trim(strings.TrimSpace(val), `"`)
	}
	user, nonce, response = fields["username"], fields["nonce"], fields["response"]
	if user == "" || nonce == "" || response == "" {
		return "", "", "", false
	}
	return user, nonce, response, true
}

// buildChallenge renders the WWW-Authenticate header value.
func buildChallenge(nonce string) string {
	return fmt.Sprintf("%s realm=%q, nonce=%q", authScheme, authRealm, nonce)
}

// parseChallenge extracts the nonce from a WWW-Authenticate value.
func parseChallenge(v string) (nonce string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(v), authScheme+" ")
	if !found {
		return "", false
	}
	for _, part := range strings.Split(rest, ",") {
		k, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			continue
		}
		if strings.TrimSpace(k) == "nonce" {
			return strings.Trim(strings.TrimSpace(val), `"`), true
		}
	}
	return "", false
}

// authorize stamps a request with valid credentials for the dialog.
func authorize(req *sipmsg.Message, user, secret, nonce string) {
	resp := authResponse(secret, nonce, string(req.Method), req.CallID)
	if req.Other == nil {
		req.Other = make(map[string][]string)
	}
	req.Other["Authorization"] = []string{buildAuthorization(user, nonce, resp)}
}

// verifyAuthorization checks a request's credentials against the
// shared secret and the dialog's expected nonce.
func verifyAuthorization(req *sipmsg.Message, secret, nonce string) bool {
	vals := req.Other["Authorization"]
	if len(vals) == 0 {
		return false
	}
	_, gotNonce, gotResp, ok := parseAuthorization(vals[0])
	if !ok || gotNonce != nonce {
		return false
	}
	want := authResponse(secret, nonce, string(req.Method), req.CallID)
	return gotResp == want
}
