package sip

import (
	"fmt"
	"time"

	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// RFC 3261 §17.1.1.1 timer values over UDP.
const (
	TimerT1 = 500 * time.Millisecond // RTT estimate
	TimerT2 = 4 * time.Second        // maximum retransmit interval
	TimerT4 = 5 * time.Second        // maximum message lifetime
)

// TxnState enumerates the RFC 3261 transaction states.
type TxnState int

// Transaction states. Calling/Trying are the initial client states,
// Confirmed exists only for INVITE server transactions.
const (
	TxnCalling TxnState = iota + 1
	TxnTrying
	TxnProceeding
	TxnCompleted
	TxnConfirmed
	TxnTerminated
)

func (s TxnState) String() string {
	switch s {
	case TxnCalling:
		return "Calling"
	case TxnTrying:
		return "Trying"
	case TxnProceeding:
		return "Proceeding"
	case TxnCompleted:
		return "Completed"
	case TxnConfirmed:
		return "Confirmed"
	case TxnTerminated:
		return "Terminated"
	default:
		return fmt.Sprintf("TxnState(%d)", int(s))
	}
}

// Core is the transaction user: the UA layer above the transactions.
type Core interface {
	// HandleRequest delivers a new incoming request with its freshly
	// created server transaction.
	HandleRequest(st *ServerTxn, req *sipmsg.Message, from sim.Addr)
	// HandleStray delivers messages that match no transaction:
	// ACKs for 2xx responses, retransmitted 200 OKs, out-of-the-blue
	// responses.
	HandleStray(m *sipmsg.Message, from sim.Addr)
}

// TxnLayer multiplexes client and server transactions over one
// transport.
type TxnLayer struct {
	sim  *sim.Simulator
	tr   *Transport
	core Core

	client map[string]*ClientTxn
	server map[string]*ServerTxn
}

// NewTxnLayer wires a transaction layer to a transport. The core
// receives everything the transactions pass up.
func NewTxnLayer(s *sim.Simulator, tr *Transport, core Core) *TxnLayer {
	l := &TxnLayer{
		sim:    s,
		tr:     tr,
		core:   core,
		client: make(map[string]*ClientTxn),
		server: make(map[string]*ServerTxn),
	}
	tr.OnMessage(l.dispatch)
	return l
}

// ActiveTransactions reports how many transactions are live.
func (l *TxnLayer) ActiveTransactions() int { return len(l.client) + len(l.server) }

func (l *TxnLayer) dispatch(m *sipmsg.Message, from sim.Addr) {
	key := m.TransactionKey()
	if m.IsResponse() {
		if ct, ok := l.client[key]; ok {
			ct.receive(m)
			return
		}
		l.core.HandleStray(m, from)
		return
	}
	if st, ok := l.server[key]; ok {
		st.receive(m)
		return
	}
	if m.Method == sipmsg.ACK {
		// ACK for a 2xx: its INVITE transaction is already gone by
		// design (RFC 3261 §13.3.1.4) — the TU handles it.
		l.core.HandleStray(m, from)
		return
	}
	st := newServerTxn(l, key, m, from)
	l.server[key] = st
	l.core.HandleRequest(st, m, from)
}

// ---------------------------------------------------------------------------
// Client transactions (RFC 3261 §17.1)
// ---------------------------------------------------------------------------

// ClientTxn drives one outgoing request.
type ClientTxn struct {
	layer  *TxnLayer
	key    string
	invite bool
	req    *sipmsg.Message
	dest   sim.Addr
	state  TxnState

	onResponse func(*sipmsg.Message)
	onTimeout  func()

	interval time.Duration
	gen      uint64 // invalidates timers scheduled for an older state
}

// Request starts a client transaction sending req to dest. Responses
// (provisional and final) are delivered to onResponse; a transaction
// timeout (no response within 64*T1) fires onTimeout.
func (l *TxnLayer) Request(req *sipmsg.Message, dest sim.Addr,
	onResponse func(*sipmsg.Message), onTimeout func()) (*ClientTxn, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	key := req.TransactionKey()
	if _, dup := l.client[key]; dup {
		return nil, fmt.Errorf("sip: duplicate client transaction %q", key)
	}
	ct := &ClientTxn{
		layer:      l,
		key:        key,
		invite:     req.Method == sipmsg.INVITE,
		req:        req,
		dest:       dest,
		onResponse: onResponse,
		onTimeout:  onTimeout,
		interval:   TimerT1,
	}
	if ct.invite {
		ct.state = TxnCalling
	} else {
		ct.state = TxnTrying
	}
	l.client[key] = ct

	if err := l.tr.Send(dest, req); err != nil {
		delete(l.client, key)
		return nil, err
	}
	ct.armRetransmit()
	ct.armTimeout()
	return ct, nil
}

// State reports the current transaction state.
func (ct *ClientTxn) State() TxnState { return ct.state }

// Request returns the request this transaction carries.
func (ct *ClientTxn) Request() *sipmsg.Message { return ct.req }

func (ct *ClientTxn) armRetransmit() {
	gen := ct.gen
	ct.layer.sim.Schedule(ct.interval, func() {
		if ct.gen != gen {
			return
		}
		if ct.state != TxnCalling && ct.state != TxnTrying {
			return
		}
		// Retransmit (timer A / timer E).
		_ = ct.layer.tr.Send(ct.dest, ct.req)
		ct.interval *= 2
		if !ct.invite && ct.interval > TimerT2 {
			ct.interval = TimerT2
		}
		ct.armRetransmit()
	})
}

func (ct *ClientTxn) armTimeout() {
	ct.layer.sim.Schedule(64*TimerT1, func() {
		// Timer B fires only while the INVITE is still unanswered
		// (Calling); timer F fires while a non-INVITE request has no
		// final response (Trying or Proceeding). RFC 3261 §17.1.
		stillWaiting := ct.state == TxnCalling ||
			(!ct.invite && (ct.state == TxnTrying || ct.state == TxnProceeding))
		if !stillWaiting {
			return
		}
		ct.terminate()
		if ct.onTimeout != nil {
			ct.onTimeout()
		}
	})
}

func (ct *ClientTxn) receive(resp *sipmsg.Message) {
	switch ct.state {
	case TxnCalling, TxnTrying:
		if resp.IsProvisional() {
			ct.transition(TxnProceeding)
			ct.deliver(resp)
			return
		}
		ct.final(resp)
	case TxnProceeding:
		if resp.IsProvisional() {
			ct.deliver(resp)
			return
		}
		ct.final(resp)
	case TxnCompleted:
		// Retransmitted final response: re-ACK non-2xx INVITE finals
		// (RFC 3261 §17.1.1.2), absorb otherwise.
		if ct.invite && !resp.IsSuccess() {
			ct.sendAck(resp)
		}
	case TxnTerminated:
		// Late retransmission; drop.
	}
}

func (ct *ClientTxn) final(resp *sipmsg.Message) {
	if ct.invite {
		if resp.IsSuccess() {
			// 2xx: the transaction terminates at once; the TU sends
			// the ACK end-to-end (RFC 3261 §13.2.2.4).
			ct.terminate()
			ct.deliver(resp)
			return
		}
		// Non-2xx final: ACK at the transaction layer, linger in
		// Completed for timer D to absorb retransmissions.
		ct.transition(TxnCompleted)
		ct.sendAck(resp)
		ct.deliver(resp)
		gen := ct.gen
		ct.layer.sim.Schedule(32*time.Second, func() { // timer D
			if ct.gen == gen {
				ct.terminate()
			}
		})
		return
	}
	ct.transition(TxnCompleted)
	ct.deliver(resp)
	gen := ct.gen
	ct.layer.sim.Schedule(TimerT4, func() { // timer K
		if ct.gen == gen {
			ct.terminate()
		}
	})
}

// sendAck builds and sends the transaction-layer ACK for a non-2xx
// final response (RFC 3261 §17.1.1.3: same branch as the INVITE).
func (ct *ClientTxn) sendAck(resp *sipmsg.Message) {
	ack := sipmsg.NewRequest(sipmsg.ACK, ct.req.RequestURI)
	ack.Via = []sipmsg.Via{ct.req.TopVia()}
	ack.From = ct.req.From
	ack.To = resp.To
	ack.CallID = ct.req.CallID
	ack.CSeq = sipmsg.CSeq{Seq: ct.req.CSeq.Seq, Method: sipmsg.ACK}
	_ = ct.layer.tr.Send(ct.dest, ack)
}

func (ct *ClientTxn) deliver(resp *sipmsg.Message) {
	if ct.onResponse != nil {
		ct.onResponse(resp)
	}
}

func (ct *ClientTxn) transition(s TxnState) {
	ct.state = s
	ct.gen++
}

func (ct *ClientTxn) terminate() {
	ct.transition(TxnTerminated)
	delete(ct.layer.client, ct.key)
}

// ---------------------------------------------------------------------------
// Server transactions (RFC 3261 §17.2)
// ---------------------------------------------------------------------------

// ServerTxn absorbs request retransmissions and retransmits responses.
type ServerTxn struct {
	layer  *TxnLayer
	key    string
	invite bool
	req    *sipmsg.Message
	peer   sim.Addr
	state  TxnState

	lastResponse *sipmsg.Message
	interval     time.Duration
	gen          uint64
}

func newServerTxn(l *TxnLayer, key string, req *sipmsg.Message, from sim.Addr) *ServerTxn {
	st := &ServerTxn{
		layer:  l,
		key:    key,
		invite: req.Method == sipmsg.INVITE,
		req:    req,
		peer:   from,
		state:  TxnTrying,
	}
	if st.invite {
		st.state = TxnProceeding
	}
	return st
}

// State reports the current transaction state.
func (st *ServerTxn) State() TxnState { return st.state }

// Request returns the request that created this transaction.
func (st *ServerTxn) Request() *sipmsg.Message { return st.req }

// Peer returns the address the request arrived from (where responses
// go, per the UDP response-routing shortcut of the testbed).
func (st *ServerTxn) Peer() sim.Addr { return st.peer }

func (st *ServerTxn) receive(req *sipmsg.Message) {
	switch {
	case req.Method == sipmsg.ACK && st.invite:
		if st.state == TxnCompleted {
			// Non-2xx final acknowledged (RFC 3261 §17.2.1).
			st.transition(TxnConfirmed)
			gen := st.gen
			st.layer.sim.Schedule(TimerT4, func() { // timer I
				if st.gen == gen {
					st.terminate()
				}
			})
		}
	default:
		// Retransmitted request: replay the last response, if any.
		if st.lastResponse != nil {
			_ = st.layer.tr.Send(st.peer, st.lastResponse)
		}
	}
}

// Respond sends a response on the transaction, driving the server
// state machine.
func (st *ServerTxn) Respond(resp *sipmsg.Message) error {
	if st.state == TxnTerminated {
		return fmt.Errorf("sip: respond on terminated transaction %q", st.key)
	}
	st.lastResponse = resp
	if err := st.layer.tr.Send(st.peer, resp); err != nil {
		return err
	}
	if resp.IsProvisional() {
		st.state = TxnProceeding
		return nil
	}
	if st.invite {
		if resp.IsSuccess() {
			// 2xx: terminate immediately; the TU owns 2xx
			// retransmission and the ACK (RFC 3261 §13.3.1.4).
			st.terminate()
			return nil
		}
		st.transition(TxnCompleted)
		st.interval = TimerT1
		st.armResponseRetransmit() // timer G
		gen := st.gen
		st.layer.sim.Schedule(64*TimerT1, func() { // timer H
			if st.gen == gen && st.state == TxnCompleted {
				st.terminate()
			}
		})
		return nil
	}
	st.transition(TxnCompleted)
	gen := st.gen
	st.layer.sim.Schedule(64*TimerT1, func() { // timer J
		if st.gen == gen {
			st.terminate()
		}
	})
	return nil
}

func (st *ServerTxn) armResponseRetransmit() {
	gen := st.gen
	st.layer.sim.Schedule(st.interval, func() {
		if st.gen != gen || st.state != TxnCompleted {
			return
		}
		_ = st.layer.tr.Send(st.peer, st.lastResponse)
		st.interval *= 2
		if st.interval > TimerT2 {
			st.interval = TimerT2
		}
		st.armResponseRetransmit()
	})
}

func (st *ServerTxn) transition(s TxnState) {
	st.state = s
	st.gen++
}

func (st *ServerTxn) terminate() {
	st.transition(TxnTerminated)
	delete(st.layer.server, st.key)
}
