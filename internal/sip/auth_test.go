package sip

import (
	"testing"
	"time"

	"vids/internal/sim"
	"vids/internal/sipmsg"
)

func TestDigestHelpersRoundTrip(t *testing.T) {
	nonce := challenge("call-1@x", "tagB")
	if nonce == "" {
		t.Fatal("empty nonce")
	}
	// Deterministic per dialog.
	if challenge("call-1@x", "tagB") != nonce {
		t.Fatal("nonce not deterministic")
	}
	if challenge("call-2@x", "tagB") == nonce {
		t.Fatal("nonce ignores call ID")
	}

	hdr := buildAuthorization("alice", nonce, authResponse("s3cret", nonce, "BYE", "call-1@x"))
	user, gotNonce, gotResp, ok := parseAuthorization(hdr)
	if !ok || user != "alice" || gotNonce != nonce {
		t.Fatalf("parsed = %q %q %q %v", user, gotNonce, gotResp, ok)
	}
	if gotResp != authResponse("s3cret", nonce, "BYE", "call-1@x") {
		t.Fatal("response mismatch")
	}

	ch := buildChallenge(nonce)
	if n, ok := parseChallenge(ch); !ok || n != nonce {
		t.Fatalf("challenge round-trip = %q %v", n, ok)
	}
}

func TestParseAuthorizationErrors(t *testing.T) {
	for _, bad := range []string{
		"", "Basic dXNlcg==",
		`Digest username="a"`, // missing nonce/response
	} {
		if _, _, _, ok := parseAuthorization(bad); ok {
			t.Fatalf("accepted %q", bad)
		}
	}
	if _, ok := parseChallenge("Bearer x"); ok {
		t.Fatal("non-digest challenge accepted")
	}
}

func TestVerifyAuthorization(t *testing.T) {
	req := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: "b.com"})
	req.CallID = "c1@x"
	nonce := challenge(req.CallID, "tagB")

	if verifyAuthorization(req, "s3cret", nonce) {
		t.Fatal("verified without credentials")
	}
	authorize(req, "alice", "s3cret", nonce)
	if !verifyAuthorization(req, "s3cret", nonce) {
		t.Fatal("valid credentials rejected")
	}
	if verifyAuthorization(req, "wrong-secret", nonce) {
		t.Fatal("wrong secret accepted")
	}
	if verifyAuthorization(req, "s3cret", "other-nonce") {
		t.Fatal("stale nonce accepted")
	}
	// Credentials are method-bound: the same header on another method
	// fails.
	req2 := req.Clone()
	req2.Method = sipmsg.INVITE
	req2.CSeq.Method = sipmsg.INVITE
	if verifyAuthorization(req2, "s3cret", nonce) {
		t.Fatal("credentials replayed across methods")
	}
}

// authTestbed builds a two-UA direct deployment with shared-secret
// auth enabled on both phones.
func authTestbed(t *testing.T, secretAlice, secretBob string) (*sim.Simulator, *UA, *UA) {
	t.Helper()
	s := sim.New(21)
	n := sim.NewNetwork(s)
	for _, h := range []string{"a.host", "b.host", "evil.host"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"a.host", "b.host"}, {"evil.host", "b.host"}} {
		if err := n.Connect(pair[0], pair[1], fastLink()); err != nil {
			t.Fatal(err)
		}
	}
	bob, err := NewUA(s, n, Config{
		User: "bob", Host: "b.host", Domain: "b.host",
		AutoAnswer: true, AnswerDelay: 100 * time.Millisecond,
		SharedSecret: secretBob,
	})
	if err != nil {
		t.Fatal(err)
	}
	alice, err := NewUA(s, n, Config{
		User: "alice", Host: "a.host", Domain: "a.host",
		Proxy: bob.Addr(), SharedSecret: secretAlice,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, alice, bob
}

func TestAuthenticatedByeSucceedsViaChallenge(t *testing.T) {
	s, alice, bob := authTestbed(t, "s3cret", "s3cret")
	call, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.host"})
	if err != nil {
		t.Fatal(err)
	}
	s.Schedule(5*time.Second, func() {
		if err := alice.Bye(call); err != nil {
			t.Errorf("Bye: %v", err)
		}
	})
	if err := s.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallTerminated {
		t.Fatalf("caller state = %v", call.State)
	}
	bobCall := bob.Calls()[call.ID]
	if bobCall == nil || bobCall.State != CallTerminated {
		t.Fatalf("callee state = %+v", bobCall)
	}
}

func TestSpoofedByeRejectedUnderAuth(t *testing.T) {
	s, alice, bob := authTestbed(t, "s3cret", "s3cret")
	call, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.host"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if call.State != CallEstablished {
		t.Fatalf("setup failed: %v", call.State)
	}

	// Attacker forges the caller's BYE but cannot answer the
	// challenge (no shared secret).
	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: "b.host"})
	bye.Via = []sipmsg.Via{ViaFor(sim.Addr{Host: "evil.host", Port: Port}, "z9hG4bKevil1")}
	bye.From = sipmsg.NameAddr{URI: alice.AOR()}.WithTag(call.LocalTag)
	bye.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	bye.CallID = call.ID
	bye.CSeq = sipmsg.CSeq{Seq: 99, Method: sipmsg.BYE}

	evilTr, err := NewTransport(bob.tr.Network(), "evil.host", Port)
	if err != nil {
		t.Fatal(err)
	}
	if err := evilTr.Send(sim.Addr{Host: "b.host", Port: Port}, bye); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(s.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The call must have survived: auth defeated the spoofed BYE.
	bobCall := bob.Calls()[call.ID]
	if bobCall == nil || bobCall.State != CallEstablished {
		t.Fatalf("callee state = %+v, want still Established", bobCall)
	}
}

func TestUnauthenticatedDeploymentStillVulnerable(t *testing.T) {
	// Control: without secrets, the same spoofed BYE kills the call
	// (the paper's baseline threat).
	s, alice, bob := authTestbed(t, "", "")
	call, err := alice.Invite(sipmsg.URI{User: "bob", Host: "b.host"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: "b.host"})
	bye.Via = []sipmsg.Via{ViaFor(sim.Addr{Host: "evil.host", Port: Port}, "z9hG4bKevil2")}
	bye.From = sipmsg.NameAddr{URI: alice.AOR()}.WithTag(call.LocalTag)
	bye.To = sipmsg.NameAddr{URI: call.RemoteURI}.WithTag(call.RemoteTag)
	bye.CallID = call.ID
	bye.CSeq = sipmsg.CSeq{Seq: 99, Method: sipmsg.BYE}
	evilTr, err := NewTransport(bob.tr.Network(), "evil.host", Port)
	if err != nil {
		t.Fatal(err)
	}
	if err := evilTr.Send(sim.Addr{Host: "b.host", Port: Port}, bye); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(s.Now() + 10*time.Second); err != nil {
		t.Fatal(err)
	}
	bobCall := bob.Calls()[call.ID]
	if bobCall == nil || bobCall.State != CallTerminated {
		t.Fatalf("callee state = %+v, want Terminated (vulnerable baseline)", bobCall)
	}
}
