package sip

import (
	"fmt"
	"hash/fnv"

	"vids/internal/sim"
	"vids/internal/sipmsg"
)

// Proxy is a stateless forwarding SIP proxy with a registrar and
// location service for its domain (paper Section 2: "The inbound
// proxy server consults a location service database to find out the
// current location of UA-B"). Inter-domain resolution — DNS in the
// paper — is a static domain-to-proxy peer table.
type Proxy struct {
	domain string
	tr     *Transport

	bindings map[string]sipmsg.URI // user -> contact URI
	peers    map[string]sim.Addr   // foreign domain -> proxy address

	// SendTrying makes the proxy answer INVITEs with a 100 Trying
	// toward the upstream hop while it forwards. Caution: RFC 3261
	// §16.11 forbids *stateless* proxies from generating 100s, and
	// for good reason — the 100 quenches the caller's timer-A
	// retransmissions, so if this proxy then loses the INVITE
	// downstream nobody retransmits and the call hangs until timer B.
	// Enable only on loss-free paths (it is off by default).
	SendTrying bool

	forwardedRequests  uint64
	forwardedResponses uint64
	registrations      uint64
	rejected           uint64
}

// NewProxy creates a proxy serving domain, bound on host:5060.
func NewProxy(network *sim.Network, host, domain string) (*Proxy, error) {
	tr, err := NewTransport(network, host, Port)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		domain:   domain,
		tr:       tr,
		bindings: make(map[string]sipmsg.URI),
		peers:    make(map[string]sim.Addr),
	}
	tr.OnMessage(p.handle)
	return p, nil
}

// Domain returns the domain this proxy is responsible for.
func (p *Proxy) Domain() string { return p.domain }

// Addr returns the proxy's transport address.
func (p *Proxy) Addr() sim.Addr { return p.tr.Addr() }

// AddPeer teaches the proxy where another domain's inbound proxy
// lives (the testbed's stand-in for DNS SRV resolution).
func (p *Proxy) AddPeer(domain string, addr sim.Addr) { p.peers[domain] = addr }

// Lookup returns the registered contact for a user of this domain.
func (p *Proxy) Lookup(user string) (sipmsg.URI, bool) {
	u, ok := p.bindings[user]
	return u, ok
}

// Stats reports (forwarded requests, forwarded responses,
// registrations, rejected messages).
func (p *Proxy) Stats() (reqs, resps, regs, rejected uint64) {
	return p.forwardedRequests, p.forwardedResponses, p.registrations, p.rejected
}

func (p *Proxy) handle(m *sipmsg.Message, from sim.Addr) {
	if m.IsResponse() {
		p.handleResponse(m)
		return
	}
	if m.Method == sipmsg.REGISTER && m.RequestURI.Host == p.domain {
		p.handleRegister(m)
		return
	}
	p.forwardRequest(m)
}

func (p *Proxy) handleRegister(req *sipmsg.Message) {
	if req.Contact == nil {
		p.respond(req, sipmsg.StatusBadRequest)
		return
	}
	p.bindings[req.To.URI.User] = req.Contact.URI
	p.registrations++
	p.respond(req, sipmsg.StatusOK)
}

// respond sends a stateless response routed by the request's top Via.
func (p *Proxy) respond(req *sipmsg.Message, code int) {
	resp := sipmsg.NewResponse(req, code)
	if resp.To.Tag() == "" {
		resp.To = resp.To.WithTag("proxy-" + p.domain)
	}
	_ = p.tr.Send(AddrForVia(req.TopVia()), resp)
}

// respondProvisional sends a 1xx without adding a To tag (provisional
// responses from proxies do not create dialogs).
func (p *Proxy) respondProvisional(req *sipmsg.Message, code int) {
	resp := sipmsg.NewResponse(req, code)
	_ = p.tr.Send(AddrForVia(req.TopVia()), resp)
}

func (p *Proxy) forwardRequest(req *sipmsg.Message) {
	if req.MaxForwards <= 0 {
		p.rejected++
		p.respond(req, sipmsg.StatusBadRequest)
		return
	}

	var dest sim.Addr
	fwd := req.Clone()
	fwd.MaxForwards--

	if req.Method == sipmsg.INVITE && req.To.Tag() == "" && p.SendTrying {
		p.respondProvisional(req, sipmsg.StatusTrying)
	}

	switch {
	case req.RequestURI.Host == p.domain:
		// Terminal domain: consult the location service and retarget
		// the request to the registered device.
		contact, ok := p.bindings[req.RequestURI.User]
		if !ok {
			p.rejected++
			p.respond(req, sipmsg.StatusNotFound)
			return
		}
		fwd.RequestURI = contact
		dest = AddrForURI(contact)
	default:
		peer, ok := p.peers[req.RequestURI.Host]
		if !ok {
			p.rejected++
			p.respond(req, sipmsg.StatusNotFound)
			return
		}
		dest = peer
	}

	// Prepend our Via. The branch is derived deterministically from
	// the incoming top branch so that a CANCEL forwarded statelessly
	// carries the same downstream branch as its INVITE
	// (RFC 3261 §16.11).
	fwd.Via = append([]sipmsg.Via{ViaFor(p.Addr(), p.deriveBranch(req.Branch()))}, fwd.Via...)
	p.forwardedRequests++
	_ = p.tr.Send(dest, fwd)
}

func (p *Proxy) deriveBranch(incoming string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.domain))
	_, _ = h.Write([]byte(incoming))
	return fmt.Sprintf("z9hG4bKsp%016x", h.Sum64())
}

func (p *Proxy) handleResponse(resp *sipmsg.Message) {
	if len(resp.Via) < 2 || resp.TopVia().Host != p.tr.Addr().Host {
		// Either not ours or nowhere further to go; drop.
		p.rejected++
		return
	}
	fwd := resp.Clone()
	fwd.Via = fwd.Via[1:]
	p.forwardedResponses++
	_ = p.tr.Send(AddrForVia(fwd.TopVia()), fwd)
}
