package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEqualTimeEventsRunInScheduleOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO tie-break violated at %d: %v", i, got)
		}
	}
}

func TestNestedSchedulingAdvancesClock(t *testing.T) {
	s := New(1)
	var at []time.Duration
	s.Schedule(time.Second, func() {
		at = append(at, s.Now())
		s.Schedule(2*time.Second, func() {
			at = append(at, s.Now())
		})
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(at) != 2 || at[0] != time.Second || at[1] != 3*time.Second {
		t.Fatalf("timestamps = %v", at)
	}
}

func TestRunHorizonStopsAndFreezesClock(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(time.Second, func() { ran++ })
	s.Schedule(time.Minute, func() { ran++ })
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestEventAtHorizonStillRuns(t *testing.T) {
	s := New(1)
	ran := false
	s.Schedule(10*time.Second, func() { ran = true })
	if err := s.Run(10 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("event scheduled exactly at the horizon did not run")
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(time.Second, func() {
		ran++
		s.Halt()
	})
	s.Schedule(2*time.Second, func() { ran++ })
	err := s.RunAll()
	if err != ErrHalted {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.Schedule(5*time.Second, func() {
		s.Schedule(-time.Second, func() { at = s.Now() })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 5*time.Second {
		t.Fatalf("clamped event ran at %v, want 5s", at)
	}
}

func TestNilEventIgnored(t *testing.T) {
	s := New(1)
	s.At(time.Second, nil)
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

// Property: for any set of delays, execution timestamps are
// non-decreasing (virtual time never goes backwards).
func TestTimeMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := New(42)
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(5)
	const mean = 90.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > mean*0.05 {
		t.Fatalf("empirical mean %.2f, want ~%.2f", got, mean)
	}
}

func TestRNGExpNonPositiveMean(t *testing.T) {
	r := NewRNG(5)
	if v := r.Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v, want 0", v)
	}
	if v := r.Exp(-3); v != 0 {
		t.Fatalf("Exp(-3) = %v, want 0", v)
	}
}

func TestRNGBernoulli(t *testing.T) {
	r := NewRNG(11)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.0042) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.002 || rate > 0.007 {
		t.Fatalf("loss rate %.4f, want ~0.0042", rate)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// Property: Exp never returns a negative value.
func TestRNGExpNonNegativeProperty(t *testing.T) {
	r := NewRNG(13)
	prop := func(mean uint16) bool {
		return r.Exp(float64(mean)) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilStopsStrictlyBeforeHorizon(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })

	// Events due exactly at the horizon must NOT run.
	if err := s.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("ran %v, want [1]", got)
	}
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v, want 20ms", s.Now())
	}

	// A later horizon picks up the deferred equal-time event with its
	// original timestamp.
	var at time.Duration
	s.Schedule(0, func() { at = s.Now() }) // scheduled at now = 20ms
	if err := s.RunUntil(25 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(got) != 2 || got[1] != 2 || at != 20*time.Millisecond {
		t.Fatalf("deferred events = %v at %v", got, at)
	}

	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("final order = %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	if err := s.RunUntil(time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock = %v", s.Now())
	}
	// A horizon in the past never rewinds the clock.
	if err := s.RunUntil(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if s.Now() != time.Second {
		t.Fatalf("clock rewound to %v", s.Now())
	}
}
