package sim

import (
	"testing"
	"time"
)

// twoHosts builds A -- B with the given link config.
func twoHosts(t *testing.T, cfg LinkConfig) (*Simulator, *Network) {
	t.Helper()
	s := New(1)
	n := NewNetwork(s)
	if err := n.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "b", cfg); err != nil {
		t.Fatal(err)
	}
	return s, n
}

func TestDeliverySimple(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{PropDelay: 10 * time.Millisecond})
	var got *Packet
	var at time.Duration
	if err := n.Bind("b", 5060, func(p *Packet) { got = p; at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	pkt := &Packet{
		From: Addr{"a", 5060}, To: Addr{"b", 5060},
		Proto: ProtoSIP, Size: 500, Payload: "hello",
	}
	if err := n.Send(pkt); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != "hello" {
		t.Fatalf("payload = %v", got.Payload)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("arrival at %v, want 10ms", at)
	}
}

func TestSerializationDelay(t *testing.T) {
	// 1.544 Mbit/s DS1: a 500-byte packet takes 500*8/1.544e6 s ≈ 2.59 ms.
	s, n := twoHosts(t, LinkConfig{Bandwidth: 1.544e6, PropDelay: 0})
	var at time.Duration = -1
	if err := n.Bind("b", 1, func(p *Packet) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	bits := float64(500 * 8)
	want := time.Duration(bits / 1.544e6 * float64(time.Second))
	if at < want-time.Microsecond || at > want+time.Microsecond {
		t.Fatalf("arrival %v, want ~%v", at, want)
	}
}

func TestBackToBackPacketsQueue(t *testing.T) {
	// Two packets sent at t=0 on a slow link must arrive one
	// serialization time apart (FIFO queueing).
	s, n := twoHosts(t, LinkConfig{Bandwidth: 1e6, PropDelay: 0})
	var arrivals []time.Duration
	if err := n.Bind("b", 1, func(p *Packet) { arrivals = append(arrivals, s.Now()) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	gap := arrivals[1] - arrivals[0]
	want := 8 * time.Millisecond // 1000 B * 8 / 1e6 bit/s
	if gap < want-10*time.Microsecond || gap > want+10*time.Microsecond {
		t.Fatalf("inter-arrival %v, want ~%v", gap, want)
	}
}

func TestMultiHopRouting(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []string{"r1", "r2"} {
		if err := n.AddRouter(r); err != nil {
			t.Fatal(err)
		}
	}
	cfg := LinkConfig{PropDelay: time.Millisecond}
	for _, pair := range [][2]string{{"a", "r1"}, {"r1", "r2"}, {"r2", "b"}} {
		if err := n.Connect(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	var at time.Duration = -1
	if err := n.Bind("b", 9, func(p *Packet) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&Packet{From: Addr{"a", 9}, To: Addr{"b", 9}, Size: 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 3*time.Millisecond {
		t.Fatalf("3-hop arrival at %v, want 3ms", at)
	}
}

func TestLossyLinkDropsApproximatelyAtRate(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{LossProb: 0.5})
	delivered := 0
	if err := n.Bind("b", 1, func(p *Packet) { delivered++ }); err != nil {
		t.Fatal(err)
	}
	const total = 10000
	for i := 0; i < total; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered < 4500 || delivered > 5500 {
		t.Fatalf("delivered %d/%d on 50%% lossy link", delivered, total)
	}
	if n.Dropped()+n.Delivered() != total {
		t.Fatalf("dropped(%d)+delivered(%d) != %d", n.Dropped(), n.Delivered(), total)
	}
}

func TestTransitInspectsAndDelays(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddRouter("mid"); err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{PropDelay: time.Millisecond}
	if err := n.Connect("a", "mid", cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("mid", "b", cfg); err != nil {
		t.Fatal(err)
	}
	seen := 0
	if err := n.SetTransit("mid", func(p *Packet) (time.Duration, bool) {
		seen++
		return 5 * time.Millisecond, true
	}); err != nil {
		t.Fatal(err)
	}
	var at time.Duration = -1
	if err := n.Bind("b", 1, func(p *Packet) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("transit saw %d packets, want 1", seen)
	}
	if at != 7*time.Millisecond { // 1ms + 5ms transit + 1ms
		t.Fatalf("arrival %v, want 7ms", at)
	}
}

func TestTransitCanDrop(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddRouter("fw"); err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{}
	if err := n.Connect("a", "fw", cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("fw", "b", cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.SetTransit("fw", func(p *Packet) (time.Duration, bool) { return 0, false }); err != nil {
		t.Fatal(err)
	}
	delivered := false
	if err := n.Bind("b", 1, func(p *Packet) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("packet crossed a dropping transit node")
	}
	if n.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped())
	}
}

func TestTapSeesDeliveredPackets(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{})
	if err := n.Bind("b", 1, func(p *Packet) {}); err != nil {
		t.Fatal(err)
	}
	tapped := 0
	n.Tap(func(p *Packet, at time.Duration) { tapped++ })
	for i := 0; i < 3; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if tapped != 3 {
		t.Fatalf("tap saw %d packets, want 3", tapped)
	}
}

func TestUnboundPortCountsAsDrop(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{})
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 99}, Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n.Dropped() != 1 || n.Delivered() != 0 {
		t.Fatalf("dropped=%d delivered=%d", n.Dropped(), n.Delivered())
	}
}

func TestSendErrors(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	if err := n.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("island"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(nil); err == nil {
		t.Fatal("nil packet accepted")
	}
	if err := n.Send(&Packet{From: Addr{"ghost", 1}, To: Addr{"a", 1}}); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"ghost", 1}}); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"island", 1}}); err == nil {
		t.Fatal("unroutable destination accepted")
	}
}

func TestTopologyErrors(t *testing.T) {
	s := New(1)
	n := NewNetwork(s)
	if err := n.AddHost(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := n.AddHost("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost("a"); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := n.Connect("a", "a", LinkConfig{}); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := n.Connect("a", "nope", LinkConfig{}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := n.Bind("nope", 1, func(*Packet) {}); err == nil {
		t.Fatal("bind to unknown host accepted")
	}
	if err := n.AddRouter("r"); err != nil {
		t.Fatal(err)
	}
	if err := n.Bind("r", 1, func(*Packet) {}); err == nil {
		t.Fatal("bind to router accepted")
	}
	if err := n.SetTransit("nope", nil); err == nil {
		t.Fatal("transit on unknown node accepted")
	}
}

func TestRoutePrefersShortestPath(t *testing.T) {
	// a - b direct plus a - r - b detour: direct must win.
	s := New(1)
	n := NewNetwork(s)
	for _, h := range []string{"a", "b"} {
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.AddRouter("r"); err != nil {
		t.Fatal(err)
	}
	cfg := LinkConfig{PropDelay: time.Millisecond}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "r"}, {"r", "b"}} {
		if err := n.Connect(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	var at time.Duration = -1
	if err := n.Bind("b", 1, func(p *Packet) { at = s.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != time.Millisecond {
		t.Fatalf("arrival %v, want 1ms (direct path)", at)
	}
}

func TestInternetCloudParameters(t *testing.T) {
	cfg := InternetCloud()
	if cfg.PropDelay != 50*time.Millisecond {
		t.Fatalf("cloud delay = %v, want 50ms (paper §7.1)", cfg.PropDelay)
	}
	if cfg.LossProb != 0.0042 {
		t.Fatalf("cloud loss = %v, want 0.0042 (paper §7.1)", cfg.LossProb)
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{
		ProtoSIP:   "SIP",
		ProtoRTP:   "RTP",
		ProtoOther: "OTHER",
		Proto(99):  "Proto(99)",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Host: "ua1.a.example.com", Port: 5060}
	if a.String() != "ua1.a.example.com:5060" {
		t.Fatalf("Addr.String() = %q", a.String())
	}
}

func TestDuplicatingLinkDeliversTwice(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{PropDelay: time.Millisecond, DupProb: 1})
	got := 0
	if err := n.Bind("b", 1, func(p *Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Fatalf("delivered %d, want 20 with DupProb=1", got)
	}
}

func TestQueueLimitDropsTail(t *testing.T) {
	// 1 Mbit/s link, 1000-byte frames (8 ms each), queue limit 5: a
	// burst of 20 loses the tail.
	s, n := twoHosts(t, LinkConfig{Bandwidth: 1e6, QueueLimit: 5})
	got := 0
	if err := n.Bind("b", 1, func(p *Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got >= 20 {
		t.Fatalf("no drops despite queue limit: %d delivered", got)
	}
	if got < 5 {
		t.Fatalf("queue head also dropped: %d delivered", got)
	}
	if n.Dropped() != uint64(20-got) {
		t.Fatalf("dropped = %d, delivered = %d", n.Dropped(), got)
	}
}

func TestUnboundedQueueByDefault(t *testing.T) {
	s, n := twoHosts(t, LinkConfig{Bandwidth: 1e6})
	got := 0
	if err := n.Bind("b", 1, func(p *Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := n.Send(&Packet{From: Addr{"a", 1}, To: Addr{"b", 1}, Size: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 50 {
		t.Fatalf("unbounded queue dropped: %d/50", got)
	}
}
