package sim

import (
	"fmt"
	"sort"
	"time"
)

// Proto labels the transport-level protocol of a simulated packet. The
// testbed only carries SIP-over-UDP and RTP-over-UDP (Section 2.1: UDP
// is preferred for SIP), so a label is all the routing layer needs.
type Proto int

// Protocol labels.
const (
	ProtoSIP Proto = iota + 1
	ProtoRTP
	ProtoRTCP
	ProtoOther
)

func (p Proto) String() string {
	switch p {
	case ProtoSIP:
		return "SIP"
	case ProtoRTP:
		return "RTP"
	case ProtoRTCP:
		return "RTCP"
	case ProtoOther:
		return "OTHER"
	default:
		return fmt.Sprintf("Proto(%d)", int(p))
	}
}

// Addr identifies a transport endpoint on a simulated host,
// host name plus UDP-like port.
type Addr struct {
	Host string
	Port int
}

func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// Packet is a datagram in flight. Payload carries the already-parsed
// application object (a SIP message or an RTP packet); Size is the
// wire size in bytes used for serialization-delay accounting.
type Packet struct {
	From    Addr
	To      Addr
	Proto   Proto
	Size    int
	Payload any

	// SentAt is stamped by the network when the packet first enters
	// a link, for end-to-end delay measurement.
	SentAt time.Duration
}

// Handler consumes packets delivered to a bound port.
type Handler func(pkt *Packet)

// Transit is installed on an inline node (the vids host). It observes
// every packet crossing the node and returns the extra processing
// delay to impose and whether to forward the packet at all.
type Transit func(pkt *Packet) (extraDelay time.Duration, forward bool)

// link is one direction of a duplex link.
type link struct {
	to         *node
	bandwidth  float64 // bits per second; 0 means infinite
	propDelay  time.Duration
	lossProb   float64
	dupProb    float64
	queueLimit int
	jitter     time.Duration // extra uniform random delay in [0, jitter)

	// lastFree tracks when the transmitter finishes the previous
	// frame, to model FIFO serialization.
	lastFree time.Duration

	drops uint64
	sent  uint64
}

type node struct {
	name    string
	links   []*link
	ports   map[int]Handler
	transit Transit
	isHost  bool
}

// Network is a static topology of named nodes joined by duplex links.
// Routing is shortest-path by hop count, computed once on demand and
// cached; topologies in this repo are small and fixed.
type Network struct {
	sim    *Simulator
	nodes  map[string]*node
	routes map[string]map[string][]*link // src -> dst -> outgoing link path
	taps   []func(pkt *Packet, at time.Duration)

	delivered uint64
	dropped   uint64
}

// NewNetwork creates an empty topology bound to the simulator clock.
func NewNetwork(s *Simulator) *Network {
	return &Network{
		sim:   s,
		nodes: make(map[string]*node),
	}
}

// AddHost registers an end host that can bind ports and send packets.
func (n *Network) AddHost(name string) error { return n.addNode(name, true) }

// AddRouter registers an interior node (router, hub, cloud element)
// that only forwards.
func (n *Network) AddRouter(name string) error { return n.addNode(name, false) }

func (n *Network) addNode(name string, host bool) error {
	if name == "" {
		return fmt.Errorf("sim: empty node name")
	}
	if _, dup := n.nodes[name]; dup {
		return fmt.Errorf("sim: duplicate node %q", name)
	}
	n.nodes[name] = &node{
		name:   name,
		ports:  make(map[int]Handler),
		isHost: host,
	}
	n.routes = nil
	return nil
}

// LinkConfig parameterizes one duplex link. Bandwidth zero means an
// infinitely fast link (only propagation delay applies).
type LinkConfig struct {
	Bandwidth float64 // bits per second
	PropDelay time.Duration
	LossProb  float64
	Jitter    time.Duration
	// DupProb duplicates a frame with this probability (a real
	// network pathology the protocol layers must absorb).
	DupProb float64
	// QueueLimit bounds the transmitter's backlog in packets
	// (drop-tail). Zero means unbounded.
	QueueLimit int
}

// Standard link presets for the Figure 7 topology.
var (
	// LAN100BaseT models the enterprise 100BaseT Ethernet segments.
	LAN100BaseT = LinkConfig{Bandwidth: 100e6, PropDelay: 50 * time.Microsecond}
	// DS1 models the enterprise uplink (1.544 Mbit/s T1).
	DS1 = LinkConfig{Bandwidth: 1.544e6, PropDelay: 500 * time.Microsecond}
)

// InternetCloud returns the paper's WAN model: 50 ms one-way delay,
// 0.42% packet loss (Section 7.1), plus mild delay jitter so RTP
// jitter measurements are non-degenerate.
func InternetCloud() LinkConfig {
	return LinkConfig{
		Bandwidth: 0,
		PropDelay: 50 * time.Millisecond,
		LossProb:  0.0042,
		Jitter:    2 * time.Millisecond,
	}
}

// Connect joins two nodes with a duplex link.
func (n *Network) Connect(a, b string, cfg LinkConfig) error {
	na, ok := n.nodes[a]
	if !ok {
		return fmt.Errorf("sim: unknown node %q", a)
	}
	nb, ok := n.nodes[b]
	if !ok {
		return fmt.Errorf("sim: unknown node %q", b)
	}
	if a == b {
		return fmt.Errorf("sim: self-link on %q", a)
	}
	na.links = append(na.links, &link{
		to: nb, bandwidth: cfg.Bandwidth, propDelay: cfg.PropDelay,
		lossProb: cfg.LossProb, dupProb: cfg.DupProb,
		queueLimit: cfg.QueueLimit, jitter: cfg.Jitter,
	})
	nb.links = append(nb.links, &link{
		to: na, bandwidth: cfg.Bandwidth, propDelay: cfg.PropDelay,
		lossProb: cfg.LossProb, dupProb: cfg.DupProb,
		queueLimit: cfg.QueueLimit, jitter: cfg.Jitter,
	})
	n.routes = nil
	return nil
}

// Bind installs a packet handler on a host port. Rebinding a port
// replaces the previous handler.
func (n *Network) Bind(host string, port int, h Handler) error {
	nd, ok := n.nodes[host]
	if !ok {
		return fmt.Errorf("sim: unknown host %q", host)
	}
	if !nd.isHost {
		return fmt.Errorf("sim: node %q is not a host", host)
	}
	nd.ports[port] = h
	return nil
}

// SetTransit installs an inline inspector on a node (used to place the
// vids device between the edge router and the firewall, Figure 1).
func (n *Network) SetTransit(name string, t Transit) error {
	nd, ok := n.nodes[name]
	if !ok {
		return fmt.Errorf("sim: unknown node %q", name)
	}
	nd.transit = t
	return nil
}

// Tap registers a passive observer invoked for every packet delivered
// to any destination handler (monitor-only vids placement and trace
// capture).
func (n *Network) Tap(f func(pkt *Packet, at time.Duration)) {
	if f != nil {
		n.taps = append(n.taps, f)
	}
}

// Delivered reports packets handed to destination handlers.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped reports packets lost on links or dropped by transit nodes.
func (n *Network) Dropped() uint64 { return n.dropped }

// Send injects a packet at its source host. Delivery is asynchronous:
// the destination handler runs at a later virtual instant. Unroutable
// or unbound destinations surface as an immediate error.
func (n *Network) Send(pkt *Packet) error {
	if pkt == nil {
		return fmt.Errorf("sim: nil packet")
	}
	return n.SendFrom(pkt.From.Host, pkt)
}

// SendFrom injects a packet at origin regardless of the packet's From
// address. This models source-address spoofing: the datagram is
// physically emitted by origin while claiming to come from pkt.From
// (the paper's threat model assumes attackers spoof freely without
// authentication, Section 3).
func (n *Network) SendFrom(origin string, pkt *Packet) error {
	if pkt == nil {
		return fmt.Errorf("sim: nil packet")
	}
	src, ok := n.nodes[origin]
	if !ok {
		return fmt.Errorf("sim: unknown source host %q", origin)
	}
	if _, ok := n.nodes[pkt.To.Host]; !ok {
		return fmt.Errorf("sim: unknown destination host %q", pkt.To.Host)
	}
	path, err := n.path(origin, pkt.To.Host)
	if err != nil {
		return err
	}
	pkt.SentAt = n.sim.Now()
	n.forward(src, path, pkt)
	return nil
}

// forward pushes pkt across the next link of path, then recursively
// schedules the following hop.
func (n *Network) forward(at *node, path []*link, pkt *Packet) {
	if len(path) == 0 {
		n.deliver(at, pkt)
		return
	}
	l := path[0]
	rest := path[1:]

	if l.lossProb > 0 && n.sim.RNG().Bernoulli(l.lossProb) {
		l.drops++
		n.dropped++
		return
	}

	now := n.sim.Now()
	start := now
	if l.lastFree > start {
		start = l.lastFree // wait for the transmitter to free up
	}
	txTime := time.Duration(0)
	if l.bandwidth > 0 {
		txTime = time.Duration(float64(pkt.Size*8) / l.bandwidth * float64(time.Second))
	}
	if l.queueLimit > 0 && txTime > 0 {
		// Drop-tail: refuse frames whose wait already spans a full
		// queue of packets of this size.
		backlog := int((start - now) / txTime)
		if backlog >= l.queueLimit {
			l.drops++
			n.dropped++
			return
		}
	}
	l.lastFree = start + txTime
	l.sent++

	arrive := start + txTime + l.propDelay
	if l.jitter > 0 {
		arrive += time.Duration(n.sim.RNG().Float64() * float64(l.jitter))
	}

	copies := 1
	if l.dupProb > 0 && n.sim.RNG().Bernoulli(l.dupProb) {
		copies = 2
	}
	next := l.to
	for c := 0; c < copies; c++ {
		at := arrive + time.Duration(c)*100*time.Microsecond
		n.sim.At(at, func() {
			if next.transit != nil {
				extra, fwd := next.transit(pkt)
				if !fwd {
					n.dropped++
					return
				}
				if extra > 0 {
					n.sim.Schedule(extra, func() { n.forward(next, rest, pkt) })
					return
				}
			}
			n.forward(next, rest, pkt)
		})
	}
}

func (n *Network) deliver(at *node, pkt *Packet) {
	if at.name != pkt.To.Host {
		// Routing delivered the packet to the wrong node; this is a
		// topology bug, count it as a drop rather than crash.
		n.dropped++
		return
	}
	now := n.sim.Now()
	for _, tap := range n.taps {
		tap(pkt, now)
	}
	h, ok := at.ports[pkt.To.Port]
	if !ok {
		n.dropped++
		return
	}
	n.delivered++
	h(pkt)
}

// path returns the outgoing-link sequence from src to dst, computing
// and caching all-pairs shortest paths on first use.
func (n *Network) path(src, dst string) ([]*link, error) {
	if src == dst {
		return nil, nil
	}
	if n.routes == nil {
		n.computeRoutes()
	}
	p, ok := n.routes[src][dst]
	if !ok || p == nil {
		return nil, fmt.Errorf("sim: no route %s -> %s", src, dst)
	}
	return p, nil
}

// computeRoutes runs BFS from every node. Node iteration is sorted so
// that tie-breaking between equal-length paths is deterministic.
func (n *Network) computeRoutes() {
	n.routes = make(map[string]map[string][]*link, len(n.nodes))
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	type hop struct {
		from *node
		via  *link
	}
	for _, srcName := range names {
		src := n.nodes[srcName]
		prev := make(map[*node]hop, len(n.nodes))
		visited := map[*node]bool{src: true}
		queue := []*node{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// Stable neighbor order for determinism.
			ls := append([]*link(nil), cur.links...)
			sort.Slice(ls, func(i, j int) bool { return ls[i].to.name < ls[j].to.name })
			for _, l := range ls {
				if visited[l.to] {
					continue
				}
				visited[l.to] = true
				prev[l.to] = hop{from: cur, via: l}
				queue = append(queue, l.to)
			}
		}
		n.routes[srcName] = make(map[string][]*link, len(n.nodes)-1)
		for _, dstName := range names {
			dst := n.nodes[dstName]
			if dst == src || !visited[dst] {
				continue
			}
			var rev []*link
			for cur := dst; cur != src; {
				h := prev[cur]
				rev = append(rev, h.via)
				cur = h.from
			}
			p := make([]*link, len(rev))
			for i := range rev {
				p[i] = rev[len(rev)-1-i]
			}
			n.routes[srcName][dstName] = p
		}
	}
}
