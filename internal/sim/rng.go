package sim

import "math"

// RNG is a small, deterministic pseudo-random generator
// (SplitMix64-based) used for workload generation and the lossy
// internet-cloud model. We avoid math/rand so that the stream is
// stable across Go releases: experiment outputs must be reproducible
// byte-for-byte between runs and toolchains.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator. Two generators with the same seed produce
// identical streams.
func NewRNG(seed int64) *RNG {
	return &RNG{state: uint64(seed)*0x9E3779B97F4A7C15 + 0x1234567890ABCDEF}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers control n and a non-positive bound is a
// programming error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn bound must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// A non-positive mean yields zero.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed value via Box-Muller.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
