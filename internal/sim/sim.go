// Package sim implements a deterministic discrete-event network
// simulator. It stands in for the OPNET Modeler testbed used in the
// paper's evaluation (Section 7.1): hosts exchange packets over duplex
// links with configurable bandwidth and propagation delay, and an
// "internet cloud" element adds wide-area delay and Bernoulli loss.
//
// The simulator is single-threaded and fully deterministic: given the
// same seed and the same sequence of scheduled events it produces the
// same packet timeline on every run, which makes the experiment
// harness reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrHalted is returned by Run when Halt was called before the horizon
// was reached.
var ErrHalted = errors.New("sim: halted")

// Simulator owns the virtual clock and the pending-event queue.
//
// The zero value is not usable; create instances with New.
type Simulator struct {
	now     time.Duration
	queue   eventHeap
	nextSeq uint64
	halted  bool
	rng     *RNG

	// free recycles executed event records so a steady
	// schedule/execute cadence (timer-wheel anchors, packet
	// deliveries) does not allocate one event per Schedule. Bounded by
	// the peak queue length.
	free []*event

	executed uint64
}

// New returns a simulator whose clock starts at zero and whose random
// source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// RNG exposes the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero (run at the current instant, after already-queued
// events for this instant).
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped
// to the current instant.
func (s *Simulator) At(t time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if t < s.now {
		t = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		*ev = event{at: t, seq: s.nextSeq, fn: fn}
	} else {
		ev = &event{at: t, seq: s.nextSeq, fn: fn} //vids:alloc-ok event free-list miss only; churn warms the pool
	}
	s.nextSeq++
	heap.Push(&s.queue, ev)
}

// recycle returns an executed event record to the free list.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	s.free = append(s.free, ev)
}

// Halt stops the run loop after the currently executing event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run executes queued events in timestamp order until the queue drains
// or the clock passes horizon. Events scheduled exactly at the horizon
// still run. It returns ErrHalted if Halt was called.
//
//vids:noalloc the churn budget measures dialog plus timer drain
func (s *Simulator) Run(horizon time.Duration) error {
	s.halted = false
	for len(s.queue) > 0 {
		if s.halted {
			return ErrHalted
		}
		next := s.queue[0]
		if next.at > horizon {
			// Freeze the clock at the horizon: the remaining
			// events are beyond the observation window.
			s.now = horizon
			return nil
		}
		ev, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return fmt.Errorf("sim: corrupt event queue entry %T", next) //vids:alloc-ok corrupt-queue error path is fatal, not per-event
		}
		s.now = ev.at
		s.executed++
		ev.fn() //vids:alloc-ok scheduled-callback dispatch; hot callees are their own noalloc roots
		s.recycle(ev)
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntil executes events scheduled strictly before t, then advances
// the clock to t without touching events at or after t. It is the
// shard-clock primitive of the online engine: before processing a
// packet stamped t, all timers due before t fire, while a timer due
// exactly at t runs after the packet — the same tie-break a sequential
// trace replay produces (packets are scheduled before any timer, so
// equal-time packets run first). It returns ErrHalted if Halt was
// called from inside an event.
func (s *Simulator) RunUntil(t time.Duration) error {
	s.halted = false
	for len(s.queue) > 0 {
		if s.halted {
			return ErrHalted
		}
		next := s.queue[0]
		if next.at >= t {
			break
		}
		ev, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return fmt.Errorf("sim: corrupt event queue entry %T", next) //vids:alloc-ok corrupt-queue error path is fatal, not per-event
		}
		s.now = ev.at
		s.executed++
		ev.fn() //vids:alloc-ok scheduled-callback dispatch; hot callees are their own noalloc roots
		s.recycle(ev)
	}
	if s.now < t {
		s.now = t
	}
	return nil
}

// RunAll executes events until the queue drains, with no horizon.
func (s *Simulator) RunAll() error { return s.Run(time.Duration(math.MaxInt64)) }
