package bufpool

import (
	"sync"
	"testing"
)

func TestGetPutRecycles(t *testing.T) {
	p := New(128)
	a := p.Get()
	if len(a) != 128 || cap(a) != 128 {
		t.Fatalf("Get returned len %d cap %d, want 128/128", len(a), cap(a))
	}
	p.Put(a[:17]) // short reads come back re-sliced; the pool restores full length
	b := p.Get()
	if &a[0] != &b[0] {
		t.Error("second Get did not recycle the returned buffer")
	}
	if len(b) != 128 {
		t.Errorf("recycled buffer has len %d, want full 128", len(b))
	}
	gets, misses, free := p.Stats()
	if gets != 2 || misses != 1 || free != 0 {
		t.Errorf("stats gets=%d misses=%d free=%d, want 2/1/0", gets, misses, free)
	}
}

func TestPutDropsForeignBuffers(t *testing.T) {
	p := New(128)
	p.Put(make([]byte, 64))       // trace payload retired through the same hook
	p.Put(make([]byte, 128, 256)) // wrong capacity even with matching length
	if _, _, free := p.Stats(); free != 0 {
		t.Errorf("foreign buffers entered the free list (%d)", free)
	}
	own := p.Get()
	p.Put(own)
	if _, _, free := p.Stats(); free != 1 {
		t.Errorf("own buffer rejected: free=%d", free)
	}
}

func TestDefaultSize(t *testing.T) {
	if s := New(0).Size(); s != DefaultSize {
		t.Errorf("New(0).Size() = %d, want %d", s, DefaultSize)
	}
}

// TestConcurrentChurn exercises the pool from many goroutines under
// the race detector.
func TestConcurrentChurn(t *testing.T) {
	p := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get()
				b[0] = byte(i)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
	gets, _, free := p.Stats()
	if gets != 4000 {
		t.Errorf("gets = %d, want 4000", gets)
	}
	if free == 0 {
		t.Error("nothing returned to the free list")
	}
}
