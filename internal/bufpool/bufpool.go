// Package bufpool provides a fixed-size datagram-buffer free list for
// the live ingestion paths (engine.UDPSource, ingress.UDPListeners).
//
// A UDP reader needs a maximum-datagram-sized buffer per read, and the
// engine keeps the payload referenced until the owning shard has
// analyzed the packet — so the buffer cannot be reused immediately and
// a naive reader allocates ~64 KiB per datagram. The pool mirrors the
// CallMonitor free list in internal/ids: buffers are recycled
// explicitly at end-of-life (the engine's OnRetire hook) rather than
// left for the garbage collector, so a steady-state capture loop
// allocates nothing.
//
// The pool only ever adopts buffers of its own size class: Put drops
// foreign slices (for example trace-replay payloads retired through
// the same engine hook) instead of mixing capacities into the free
// list. That keeps Get's contract trivial — every buffer it returns
// has the full capacity a datagram read needs.
package bufpool

import "sync"

// DefaultSize is the buffer capacity used by New(0): the maximum UDP
// datagram size, so one buffer always holds one whole read.
const DefaultSize = 64 * 1024

// Pool is a mutex-guarded free list of equal-capacity byte buffers.
// The zero value is not usable; create pools with New.
type Pool struct {
	mu     sync.Mutex
	size   int
	free   [][]byte
	gets   uint64
	misses uint64
}

// New creates a pool of size-capacity buffers. size <= 0 means
// DefaultSize.
func New(size int) *Pool {
	if size <= 0 {
		size = DefaultSize
	}
	return &Pool{size: size}
}

// Size reports the capacity of every buffer the pool hands out.
func (p *Pool) Size() int { return p.size }

// Get returns a full-length buffer (len == cap == Size), recycled when
// the free list has one.
//
//vids:noalloc the per-datagram receive path; steady state recycles via Put
func (p *Pool) Get() []byte {
	p.mu.Lock()
	p.gets++
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return b
	}
	p.misses++
	p.mu.Unlock()
	return make([]byte, p.size) //vids:alloc-ok pool miss: first use or more buffers in flight than ever retired
}

// Put returns a buffer to the free list. Slices of a different
// capacity are dropped — the retire hook sees every payload the engine
// finishes with, pooled or not, and only the pool's own buffers may
// re-enter circulation.
//
//vids:noalloc the per-datagram retire path
func (p *Pool) Put(b []byte) {
	if cap(b) != p.size {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, b[:p.size])
	p.mu.Unlock()
}

// Stats reports lifetime Get calls, allocation misses, and the current
// free-list depth.
func (p *Pool) Stats() (gets, misses uint64, free int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.misses, len(p.free)
}
