// Package scenario drives the paper's evaluation scenarios — one
// benign baseline plus the eleven attack injections of Section 7 —
// against the Figure 7 testbed. cmd/vids runs them for demonstration
// and cmd/speccover replays the same suite under a coverage observer,
// so both tools exercise the identical traffic.
package scenario

import (
	"fmt"
	"io"
	"time"

	"vids/internal/attack"
	"vids/internal/ids"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/workload"
)

// Names lists every scenario in canonical run order. "clean" is the
// benign baseline; the rest inject one attack each.
var Names = []string{
	"clean", "bye-dos", "cancel-dos", "invite-flood",
	"media-spam", "rtp-flood", "codec-change", "hijack", "toll-fraud",
	"drdos", "register-hijack", "rtcp-bye",
}

// Options parameterizes one scenario run.
type Options struct {
	// Seed seeds the simulator and workload generator.
	Seed int64
	// Out receives the scenario narration and per-alert lines; nil
	// silences them.
	Out io.Writer
	// Prepare, when set, runs after the testbed is built and before
	// any traffic flows — the hook cmd/speccover uses to install its
	// coverage observer on the IDS.
	Prepare func(tb *workload.Testbed)
	// Configure, when set, edits the workload config before the
	// testbed is built — the hook the SRTP survival matrix uses to
	// flip the IDS into header-only media mode.
	Configure func(cfg *workload.Config)
}

// Run builds a fresh testbed, plays the named scenario through it,
// and returns the testbed with the simulation settled so the caller
// can inspect alerts and counters.
func Run(name string, opts Options) (*workload.Testbed, error) {
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	cfg := workload.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.UAs = 4
	cfg.WithMedia = true
	cfg.AnswerDelay = time.Second
	if name == "cancel-dos" {
		cfg.AnswerDelay = 20 * time.Second // keep the INVITE pending
	}
	if opts.Configure != nil {
		opts.Configure(&cfg)
	}
	tb, err := workload.New(cfg)
	if err != nil {
		return nil, err
	}
	tb.IDS.OnAlert = func(a ids.Alert) { fmt.Fprintf(out, "  ALERT %s\n", a) }
	if opts.Prepare != nil {
		opts.Prepare(tb)
	}

	sniff := attack.NewSniffer()
	tb.Net.Tap(sniff.Tap)
	atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)

	if err := tb.Sim.Run(time.Second); err != nil {
		return nil, err
	}
	rec, err := tb.PlaceCall(0, 0, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	if err := tb.Sim.Run(tb.Sim.Now() + 8*time.Second); err != nil {
		return nil, err
	}

	call := rec.Call()
	info := attack.DialogInfo{
		CallID:          call.ID,
		CallerTag:       call.LocalTag,
		CalleeTag:       call.RemoteTag,
		CallerAOR:       sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
		CalleeAOR:       sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
		CallerHost:      workload.UAHost("a", 1),
		CalleeHost:      call.RemoteContact.Host,
		CallerMediaPort: call.LocalRTPPort,
	}
	if call.RemoteSDP != nil {
		if audio, ok := call.RemoteSDP.FirstAudio(); ok {
			info.CalleeMediaPort = audio.Port
		}
	}
	if st, ok := sniff.Stream(sim.Addr{Host: info.CalleeHost, Port: info.CalleeMediaPort}); ok {
		info.SSRC, info.LastSeq, info.LastTS = st.SSRC, st.LastSeq, st.LastTS
	}

	switch name {
	case "clean":
		fmt.Fprintln(out, "  (no attack injected)")
	case "bye-dos":
		fmt.Fprintln(out, "  attacker: fully spoofed BYE impersonating the caller")
		if err := atk.ByeDoS(info, true); err != nil {
			return nil, err
		}
	case "cancel-dos":
		fmt.Fprintln(out, "  attacker: forged CANCEL for the pending INVITE")
		if err := atk.CancelDoS(info, "z9hG4bKforged",
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}, ""); err != nil {
			return nil, err
		}
	case "invite-flood":
		fmt.Fprintln(out, "  attacker: 40 INVITEs in 400ms at one phone")
		atk.InviteFlood(sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB},
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}, 40, 10*time.Millisecond)
	case "media-spam":
		fmt.Fprintln(out, "  attacker: fabricated RTP with sniffed SSRC, jumped seq/timestamp")
		atk.MediaSpam(info, 20, 20*time.Millisecond)
	case "rtp-flood":
		fmt.Fprintln(out, "  attacker: RTP at 10x the codec rate")
		atk.RTPFlood(info, 500, 2*time.Millisecond, false)
	case "codec-change":
		fmt.Fprintln(out, "  attacker: RTP with a non-negotiated payload type")
		atk.RTPFlood(info, 10, 20*time.Millisecond, true)
	case "hijack":
		fmt.Fprintln(out, "  attacker: in-dialog re-INVITE redirecting media")
		if err := atk.Hijack(info); err != nil {
			return nil, err
		}
	case "toll-fraud":
		fmt.Fprintln(out, "  misbehaving caller: BYE to stop billing, media keeps flowing")
		if err := tb.UAsA[0].Bye(call); err != nil {
			return nil, err
		}
		attack.NewTollFraudster(attack.New(tb.Sim, tb.Net, info.CallerHost)).
			ContinueMedia(info, 100, 20*time.Millisecond)
	case "drdos":
		fmt.Fprintln(out, "  attacker: spoofed OPTIONS to every network-A phone; responses swamp a B phone")
		var reflectors []sim.Addr
		for i := 1; i <= cfg.UAs; i++ {
			reflectors = append(reflectors, sim.Addr{Host: workload.UAHost("a", i), Port: 5060})
		}
		atk.DRDoS(sim.Addr{Host: workload.UAHost("b", 2), Port: 5060},
			reflectors, 8, 5*time.Millisecond)
	case "rtcp-bye":
		fmt.Fprintln(out, "  attacker: forged RTCP BYE ending the media stream, SIP untouched")
		if err := atk.RTCPBye(info); err != nil {
			return nil, err
		}
	case "register-hijack":
		fmt.Fprintln(out, "  attacker: forged REGISTER rebinding a victim's AOR to the attacker")
		victim := sipmsg.URI{User: workload.UAUser("b", 2), Host: workload.DomainB}
		if err := atk.HijackRegistration(victim,
			sim.Addr{Host: workload.ProxyBHost, Port: 5060}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown scenario %q", name)
	}

	if err := tb.Sim.Run(tb.Sim.Now() + 15*time.Second); err != nil {
		return nil, err
	}
	return tb, nil
}
