package scenario

import (
	"reflect"
	"testing"

	"vids/internal/engine"
	"vids/internal/ids"
	"vids/internal/workload"
)

// TestBackendScenarioParity is the behavioral half of the compiled
// dispatch gate: every evaluation scenario runs once on the
// specgen-compiled backend and once on the interpreted reference
// walker, and the two must raise the identical alert multiset —
// same types, same timestamps, same calls, same detail strings. Any
// semantic drift between a generated guard and its interpreted
// counterpart shows up here as a diverging alert list.
func TestBackendScenarioParity(t *testing.T) {
	for _, name := range Names {
		alerts := make(map[ids.Backend][]ids.Alert, 2)
		for _, backend := range []ids.Backend{ids.BackendCompiled, ids.BackendInterpreted} {
			tb, err := Run(name, Options{
				Seed: 7,
				Configure: func(cfg *workload.Config) {
					cfg.IDS.Backend = backend
				},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", backend, name, err)
			}
			got := tb.IDS.Alerts()
			engine.SortAlerts(got)
			alerts[backend] = got
		}
		compiled, interpreted := alerts[ids.BackendCompiled], alerts[ids.BackendInterpreted]
		if !reflect.DeepEqual(compiled, interpreted) {
			t.Errorf("%s: compiled backend raised %d alert(s), interpreted %d; alert sets diverge\ncompiled:    %+v\ninterpreted: %+v",
				name, len(compiled), len(interpreted), compiled, interpreted)
		}
	}
}
