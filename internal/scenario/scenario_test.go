package scenario

import (
	"testing"

	"vids/internal/ids"
	"vids/internal/workload"
)

// TestSRTPScenarioSurvival is the committed SRTP degradation matrix:
// every evaluation scenario runs twice, against the full-inspection
// baseline and against header-only media mode (SRTP deployments — RFC
// 3711 leaves the RTP header in the clear but encrypts payloads and
// SRTCP). The signaling detectors and the header-driven media
// detectors must survive unchanged; the single casualty is forged
// RTCP BYE, whose evidence rides encrypted SRTCP. The benign baseline
// must stay silent in both modes.
func TestSRTPScenarioSurvival(t *testing.T) {
	// survives records whether header-only mode must still detect the
	// scenario. Everything keyed on SIP or on cleartext RTP header
	// fields (SSRC, sequence, timestamp, payload type) survives.
	survives := map[string]bool{
		"bye-dos":         true,  // SIP + RTP-header cross-protocol evidence
		"cancel-dos":      true,  // pure SIP
		"invite-flood":    true,  // pure SIP
		"media-spam":      true,  // SSRC/seq/ts jumps: cleartext header
		"rtp-flood":       true,  // packet rate: needs no payload
		"codec-change":    true,  // payload type: cleartext header
		"hijack":          true,  // SIP re-INVITE
		"toll-fraud":      true,  // BYE + continuing RTP headers
		"drdos":           true,  // pure SIP
		"register-hijack": true,  // pure SIP
		"rtcp-bye":        false, // the forged BYE rides encrypted SRTCP
	}

	for _, headerOnly := range []bool{false, true} {
		mode := "baseline"
		if headerOnly {
			mode = "header-only"
		}
		for _, name := range Names {
			tb, err := Run(name, Options{
				Seed: 7,
				Configure: func(cfg *workload.Config) {
					cfg.IDS.MediaHeaderOnly = headerOnly
				},
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, name, err)
			}
			alerts := tb.IDS.Alerts()
			switch {
			case name == "clean":
				if len(alerts) != 0 {
					t.Errorf("%s/clean: %d false alerts; first: %+v", mode, len(alerts), alerts[0])
				}
			case !headerOnly || survives[name]:
				if len(alerts) == 0 {
					t.Errorf("%s/%s: attack went undetected", mode, name)
				}
			default:
				// The documented casualty: header-only mode must go
				// blind here, not misfire with a different alert.
				if len(alerts) != 0 {
					t.Errorf("%s/%s: expected blindness, got %d alerts; first: %+v",
						mode, name, len(alerts), alerts[0])
				}
			}
			if headerOnly {
				for _, a := range alerts {
					if a.Type == ids.AlertRTCPBye {
						t.Errorf("%s/%s: rtcp-bye alert without RTCP payload access: %+v",
							mode, name, a)
					}
				}
			}
		}
	}
}
