module vids

go 1.22
