package vids_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"vids"
	"vids/internal/attack"
	"vids/internal/core"
	"vids/internal/engine"
	"vids/internal/fastpath"
	"vids/internal/ids"
	"vids/internal/idsgen"
	"vids/internal/ingress"
	"vids/internal/media"
	"vids/internal/rtp"
	"vids/internal/sdp"
	"vids/internal/sim"
	"vids/internal/sipmsg"
	"vids/internal/trace"
	"vids/internal/workload"
)

// benchOpts keeps per-iteration experiment runs small enough to
// benchmark while exercising the full pipeline. The cmd/experiments
// binary runs the paper-scale versions.
func benchOpts() vids.ExperimentOptions {
	return vids.ExperimentOptions{
		Seed:             9,
		UAs:              4,
		Duration:         2 * time.Minute,
		MeanCallInterval: 40 * time.Second,
		MeanCallDuration: 15 * time.Second,
	}
}

// BenchmarkFig8Workload regenerates the Figure 8 arrival/duration
// workload (experiment E1).
func BenchmarkFig8Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := vids.Fig8(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if res.Placed == 0 {
			b.Fatal("no calls placed")
		}
	}
}

// BenchmarkFig9CallSetup regenerates the Figure 9 setup-delay
// comparison (experiment E2) and reports the measured vids overhead.
func BenchmarkFig9CallSetup(b *testing.B) {
	var overhead time.Duration
	for i := 0; i < b.N; i++ {
		res, err := vids.Fig9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.AvgOverhead
	}
	b.ReportMetric(float64(overhead)/float64(time.Millisecond), "setup-overhead-ms")
}

// BenchmarkFig10RTPQoS regenerates the Figure 10 RTP QoS comparison
// (experiment E3).
func BenchmarkFig10RTPQoS(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	var overhead time.Duration
	for i := 0; i < b.N; i++ {
		res, err := vids.Fig10(opts)
		if err != nil {
			b.Fatal(err)
		}
		overhead = res.DelayOverhead
	}
	b.ReportMetric(float64(overhead)/float64(time.Millisecond), "rtp-overhead-ms")
}

// BenchmarkCPUOverhead regenerates the Section 7.3 CPU measurement
// (experiment E4).
func BenchmarkCPUOverhead(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	var perPacket time.Duration
	for i := 0; i < b.N; i++ {
		res, err := vids.CPUOverhead(opts)
		if err != nil {
			b.Fatal(err)
		}
		perPacket = res.PerPacket
	}
	b.ReportMetric(float64(perPacket.Nanoseconds()), "vids-ns/packet")
}

// BenchmarkPerCallMemory regenerates the Section 7.3 memory
// accounting (experiment E5).
func BenchmarkPerCallMemory(b *testing.B) {
	var perCall int
	for i := 0; i < b.N; i++ {
		res, err := vids.Memory(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		perCall = res.PerCallBytes
	}
	b.ReportMetric(float64(perCall), "bytes/call")
}

// BenchmarkDetectionAccuracy regenerates the Section 7.5 accuracy
// table (experiment E6).
func BenchmarkDetectionAccuracy(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := vids.Accuracy(opts)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.DetectionRate()
	}
	b.ReportMetric(rate*100, "detection-%")
}

// BenchmarkDetectionSensitivity regenerates the Section 7.5 timer
// sweeps (experiment E7).
func BenchmarkDetectionSensitivity(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	for i := 0; i < b.N; i++ {
		if _, err := vids.Sensitivity(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossProtocolAblation runs experiment A1.
func BenchmarkCrossProtocolAblation(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	for i := 0; i < b.N; i++ {
		res, err := vids.Ablation(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.DetectedWithSync || res.DetectedWithoutSync {
			b.Fatal("ablation outcome wrong")
		}
	}
}

// ---------------------------------------------------------------------------
// Packet-path micro-benchmarks: the hot spots of the inline IDS.
// ---------------------------------------------------------------------------

func benchInvite() *sipmsg.Message {
	inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: "proxy.a.example.com", Port: 5060,
		Params: map[string]string{"branch": "z9hG4bKbench"}}}
	inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag("t1")
	inv.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	inv.CallID = "bench@a.example.com"
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "ua1.a.example.com"}}
	inv.Contact = &contact
	inv.ContentType = "application/sdp"
	inv.Body = sdp.New("alice", "ua1.a.example.com", 20000, sdp.PayloadG729).Marshal()
	return inv
}

// BenchmarkSIPParse measures the wire-format parser (every packet
// crossing vids goes through it).
func BenchmarkSIPParse(b *testing.B) {
	raw := benchInvite().Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sipmsg.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSIPSerialize measures message serialization.
func BenchmarkSIPSerialize(b *testing.B) {
	m := benchInvite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Bytes()
	}
}

// BenchmarkRTPParse measures RTP header decoding.
func BenchmarkRTPParse(b *testing.B) {
	p := &rtp.Packet{PayloadType: 18, Sequence: 7, Timestamp: 1120, SSRC: 42,
		Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtp.Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDSProcessSIP measures the full per-SIP-packet IDS path:
// parse, classify, machine step.
func BenchmarkIDSProcessSIP(b *testing.B) {
	s := sim.New(1)
	d := ids.New(s, ids.DefaultConfig())
	raw := benchInvite().Bytes()
	from := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	to := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(&sim.Packet{From: from, To: to, Proto: sim.ProtoSIP, Size: len(raw), Payload: raw})
	}
}

// BenchmarkIDSProcessSIPCompiled measures the per-SIP-packet detection
// path on the specgen-compiled backend with the parser factored out:
// the INVITE is parsed once and each iteration runs ProcessSIP —
// classification, fact-base lookup, compiled machine step — as a
// retransmission of the same dialog. BenchmarkIDSProcessSIP times the
// same path including the parse (16 of its 18 baseline allocations);
// this variant isolates what the compiled dispatch is responsible
// for, and alloc_test.go pins its single-digit budget.
func BenchmarkIDSProcessSIPCompiled(b *testing.B) {
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	cfg.Backend = ids.BackendCompiled
	// Every iteration re-sends the same INVITE with virtual time frozen,
	// which the windowed flood counter would (correctly) flag; raise the
	// threshold so the benchmark measures the benign path.
	cfg.FloodN = 1 << 40
	d := ids.New(s, cfg)
	inv := benchInvite()
	from := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	to := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	pkt := &sim.Packet{From: from, To: to, Proto: sim.ProtoSIP, Size: 500}
	d.ProcessSIP(inv, pkt) // create the monitor outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ProcessSIP(inv, pkt)
	}
	b.StopTimer()
	if n := len(d.Alerts()); n != 0 {
		b.Fatalf("retransmitted INVITE raised %d alerts", n)
	}
}

// BenchmarkIDSProcessRTP measures the full per-RTP-packet IDS path on
// an established call's stream.
func BenchmarkIDSProcessRTP(b *testing.B) {
	s := sim.New(1)
	d := ids.New(s, ids.DefaultConfig())
	// Establish one call so the stream has a live machine.
	inv := benchInvite()
	pa := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	pb := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	d.Process(&sim.Packet{From: pa, To: pb, Proto: sim.ProtoSIP, Size: 500, Payload: inv.Bytes()})
	ok := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	ok.To = ok.To.WithTag("t2")
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "ua2.b.example.com"}}
	ok.Contact = &okContact
	ok.ContentType = "application/sdp"
	ok.Body = sdp.New("bob", "ua2.b.example.com", 30000, sdp.PayloadG729).Marshal()
	d.Process(&sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 500, Payload: ok.Bytes()})

	mfrom := sim.Addr{Host: "ua1.a.example.com", Port: 20000}
	mto := sim.Addr{Host: "ua2.b.example.com", Port: 30000}
	// Marshal once outside the measured loop — the benchmark times the
	// IDS, not the packet encoder — and patch the sequence/timestamp
	// words in place each iteration so the stream stays in order.
	p := &rtp.Packet{PayloadType: 18, SSRC: 42, Payload: make([]byte, 20)}
	raw, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	pkt := &sim.Packet{From: mfrom, To: mto, Proto: sim.ProtoRTP, Size: len(raw), Payload: raw}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint16(raw[2:], uint16(i))
		binary.BigEndian.PutUint32(raw[4:], uint32(i)*160)
		d.Process(pkt)
	}
}

// churnStep is one pre-parsed message of a churn dialog with its
// addressed carrier packet (ProcessSIP never re-parses the payload).
type churnStep struct {
	m   *sipmsg.Message
	pkt *sim.Packet
}

// churnDialog builds the complete benign dialog of call slot i —
// INVITE, 180, 200 (SDP answer), ACK, BYE, 200 — pre-parsed, so the
// churn benchmark measures monitor lifecycle cost, not the parser.
func churnDialog(i int) []churnStep {
	caller := sim.Addr{Host: "ua1.a.example.com", Port: 5060}
	callee := sim.Addr{Host: "ua2.b.example.com", Port: 5060}
	pa := sim.Addr{Host: "proxy.a.example.com", Port: 5060}
	pb := sim.Addr{Host: "proxy.b.example.com", Port: 5060}
	cid := fmt.Sprintf("churn-%d@ua1.a.example.com", i)

	inv := sipmsg.NewRequest(sipmsg.INVITE, sipmsg.URI{User: "bob", Host: "b.example.com"})
	inv.Via = []sipmsg.Via{{Transport: "UDP", Host: pa.Host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKchurn%d", i)}}}
	inv.From = sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: "a.example.com"}}.WithTag("t1")
	inv.To = sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: "b.example.com"}}
	inv.CallID = cid
	inv.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.INVITE}
	contact := sipmsg.NameAddr{URI: sipmsg.URI{User: "alice", Host: caller.Host}}
	inv.Contact = &contact
	inv.ContentType = "application/sdp"
	inv.Body = sdp.New("alice", caller.Host, 20000+2*i, sdp.PayloadG729).Marshal()

	ringing := sipmsg.NewResponse(inv, sipmsg.StatusRinging)
	ringing.To = ringing.To.WithTag("t2")

	okInv := sipmsg.NewResponse(inv, sipmsg.StatusOK)
	okInv.To = okInv.To.WithTag("t2")
	okContact := sipmsg.NameAddr{URI: sipmsg.URI{User: "bob", Host: callee.Host}}
	okInv.Contact = &okContact
	okInv.ContentType = "application/sdp"
	okInv.Body = sdp.New("bob", callee.Host, 30000+2*i, sdp.PayloadG729).Marshal()

	ack := sipmsg.NewRequest(sipmsg.ACK, sipmsg.URI{User: "bob", Host: callee.Host})
	ack.From = inv.From
	ack.To = okInv.To
	ack.Via = []sipmsg.Via{{Transport: "UDP", Host: caller.Host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKchurnack%d", i)}}}
	ack.CallID = cid
	ack.CSeq = sipmsg.CSeq{Seq: 1, Method: sipmsg.ACK}

	bye := sipmsg.NewRequest(sipmsg.BYE, sipmsg.URI{User: "bob", Host: callee.Host})
	bye.From = inv.From
	bye.To = okInv.To
	bye.Via = []sipmsg.Via{{Transport: "UDP", Host: caller.Host, Port: 5060,
		Params: map[string]string{"branch": fmt.Sprintf("z9hG4bKchurnbye%d", i)}}}
	bye.CallID = cid
	bye.CSeq = sipmsg.CSeq{Seq: 2, Method: sipmsg.BYE}

	okBye := sipmsg.NewResponse(bye, sipmsg.StatusOK)

	return []churnStep{
		{inv, &sim.Packet{From: pa, To: pb, Proto: sim.ProtoSIP, Size: 500}},
		{ringing, &sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 400}},
		{okInv, &sim.Packet{From: pb, To: pa, Proto: sim.ProtoSIP, Size: 500}},
		{ack, &sim.Packet{From: caller, To: callee, Proto: sim.ProtoSIP, Size: 300}},
		{bye, &sim.Packet{From: caller, To: callee, Proto: sim.ProtoSIP, Size: 300}},
		{okBye, &sim.Packet{From: callee, To: caller, Proto: sim.ProtoSIP, Size: 300}},
	}
}

// BenchmarkCallChurn measures the full monitor lifecycle — create on
// INVITE, establish, tear down on BYE, linger, evict, recycle — for
// one complete dialog per iteration. With pooled monitors, wheel
// timers and interned keys the steady state allocates (almost)
// nothing: the budget in alloc_test.go pins it.
func BenchmarkCallChurn(b *testing.B) {
	const slots = 64
	s := sim.New(1)
	cfg := ids.DefaultConfig()
	d := ids.New(s, cfg)
	dialogs := make([][]churnStep, slots)
	for i := range dialogs {
		dialogs[i] = churnDialog(i)
	}
	// After the BYE the RTP machines wait out Figure 5's timer T and
	// the monitor lingers CloseLinger before eviction; advance virtual
	// time past both so every iteration recycles its monitor.
	settle := cfg.ByeGraceT + cfg.CloseLinger + time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, step := range dialogs[i%slots] {
			d.ProcessSIP(step.m, step.pkt)
		}
		if err := s.Run(s.Now() + settle); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if n := len(d.Alerts()); n != 0 {
		b.Fatalf("benign churn raised %d alerts", n)
	}
	if d.ActiveCalls() != 0 {
		b.Fatalf("%d monitors still resident", d.ActiveCalls())
	}
}

// BenchmarkEFSMStep measures one guarded machine transition.
func BenchmarkEFSMStep(b *testing.B) {
	spec := core.NewSpec("bench", "A")
	spec.On("A", "e", func(c *core.Ctx) bool {
		return c.Event.IntArg("x") >= 0
	}, func(c *core.Ctx) {
		c.Vars.SetInt("l.count", c.Vars.GetInt("l.count")+1)
	}, "A")
	m := core.NewMachine(spec, nil)
	ev := core.Event{Name: "e", Args: map[string]any{"x": 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEFSMStepCompiled measures one guarded transition through
// the specgen-compiled dispatch — dense table lookup, devirtualized
// guard, inlined action on struct-field locals — the compiled
// counterpart of BenchmarkEFSMStep's interpreted walk. The machine is
// the invite-flood counter spinning on its counting self-loop with a
// typed argument vector, threshold set high enough that b.N
// iterations never trip it.
func BenchmarkEFSMStepCompiled(b *testing.B) {
	m := idsgen.NewFloodMachine(idsgen.FloodInvite, 1<<40)
	args := idsgen.FloodArgs{Dest: "bob@b.example.com", Src: "attacker.example.net"}
	ev := core.Event{Name: ids.EvInvite, Typed: &args}
	if _, err := m.Step(ev); err != nil { // INIT -> counting: arm the self-loop
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Reuse one result variable: a fresh temporary per iteration would
	// add a per-call zeroing of the 14-word StepResult that no real
	// caller pays (the delivery path appends into a reused buffer).
	var res core.StepResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = m.Step(ev)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = res
}

// BenchmarkSimulatorEvents measures raw event scheduling throughput.
func BenchmarkSimulatorEvents(b *testing.B) {
	s := sim.New(1)
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, func() { n++ })
	}
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
	if n != b.N {
		b.Fatalf("ran %d of %d events", n, b.N)
	}
}

// BenchmarkTestbedCall measures one full end-to-end call (setup,
// media start, teardown) through the simulated enterprise network
// with vids inline.
func BenchmarkTestbedCall(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.UAs = 2
	cfg.WithMedia = false
	tb, err := workload.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.Sim.Run(time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := tb.PlaceCall(0, 0, time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Sim.Run(tb.Sim.Now() + 30*time.Second); err != nil {
			b.Fatal(err)
		}
		if !rec.Established {
			b.Fatal("call failed")
		}
	}
}

// BenchmarkAttackDetectionLatency measures the end-to-end cost of the
// flagship detection: spoofed BYE -> cross-protocol alert.
func BenchmarkAttackDetectionLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := workload.DefaultConfig()
		cfg.UAs = 2
		cfg.WithMedia = true
		cfg.AnswerDelay = time.Second
		tb, err := workload.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sniff := attack.NewSniffer()
		tb.Net.Tap(sniff.Tap)
		if err := tb.Sim.Run(time.Second); err != nil {
			b.Fatal(err)
		}
		rec, err := tb.PlaceCall(0, 0, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.Sim.Run(tb.Sim.Now() + 5*time.Second); err != nil {
			b.Fatal(err)
		}
		call := rec.Call()
		info := attack.DialogInfo{
			CallID:     call.ID,
			CallerTag:  call.LocalTag,
			CalleeTag:  call.RemoteTag,
			CallerAOR:  sipmsg.URI{User: workload.UAUser("a", 1), Host: workload.DomainA},
			CalleeAOR:  sipmsg.URI{User: workload.UAUser("b", 1), Host: workload.DomainB},
			CallerHost: workload.UAHost("a", 1),
			CalleeHost: call.RemoteContact.Host,
		}
		atk := attack.New(tb.Sim, tb.Net, workload.AttackerHost)
		if err := atk.ByeDoS(info, true); err != nil {
			b.Fatal(err)
		}
		if err := tb.Sim.Run(tb.Sim.Now() + 5*time.Second); err != nil {
			b.Fatal(err)
		}
		detected := false
		for _, a := range tb.IDS.Alerts() {
			if a.Type == ids.AlertTollFraud || a.Type == ids.AlertByeDoS {
				detected = true
			}
		}
		if !detected {
			b.Fatal("attack undetected")
		}
	}
}

// BenchmarkAuthExperiment runs experiment E8 (authentication
// sufficiency).
func BenchmarkAuthExperiment(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	for i := 0; i < b.N; i++ {
		res, err := vids.Auth(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.NoAuthDoSSucceeded || res.AuthDoSSucceeded {
			b.Fatal("auth experiment outcome wrong")
		}
	}
}

// BenchmarkTraceReplay measures offline trace analysis throughput:
// packets per second through a fresh IDS.
func BenchmarkTraceReplay(b *testing.B) {
	// Capture once.
	cfg := workload.DefaultConfig()
	cfg.UAs = 3
	cfg.WithMedia = true
	tb, err := workload.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	tb.IDS.OnPacket = w.Tap
	tb.GenerateCalls(time.Minute)
	if err := tb.Sim.Run(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
	entries, err := trace.Read(&buf)
	if err != nil {
		b.Fatal(err)
	}
	if len(entries) == 0 {
		b.Fatal("empty capture")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i) + 1)
		d := ids.New(s, ids.DefaultConfig())
		if err := trace.Replay(s, entries, d); err != nil {
			b.Fatal(err)
		}
		if err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(entries)), "packets/replay")
}

// BenchmarkEngineThroughput measures the online detection pipeline
// end to end through the multi-lane ingestion tier (internal/ingress):
// a synthetic benign-call workload, partitioned into disjoint dialog
// ranges, fed by one producer goroutine per lane — the deployment
// shape of K SO_REUSEPORT listeners — then routed, analyzed and
// drained. Sub-benchmarks sweep the shard count with lanes scaled
// alongside; on a multi-core runner throughput scales with shards
// because the serial router of the previous design is out of the hot
// path (parsing runs on the shard workers, flood windows on the
// lanes). The reported "cores" metric lets downstream tooling
// (cmd/benchjson -scaling) skip the scaling assertion on boxes with
// too few cores to show it.
func BenchmarkEngineThroughput(b *testing.B) {
	const totalCalls = 192 // divisible by every lane count below
	type partition struct {
		pkts []*sim.Packet
		ats  []time.Duration
	}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			lanes := shards
			parts := make([]partition, lanes)
			total := 0
			for i := range parts {
				entries := engine.Synthesize(engine.SynthConfig{
					Calls: totalCalls / lanes, RTPPerCall: 40,
					FirstCall: i * (totalCalls / lanes),
				})
				p := partition{
					pkts: make([]*sim.Packet, len(entries)),
					ats:  make([]time.Duration, len(entries)),
				}
				for j, en := range entries {
					p.pkts[j] = en.Packet()
					p.ats[j] = en.At()
				}
				parts[i] = p
				total += len(entries)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ing := ingress.New(ingress.Config{
					Lanes:  lanes,
					Engine: engine.Config{Shards: shards},
				})
				errc := make(chan error, lanes)
				var wg sync.WaitGroup
				for _, p := range parts {
					wg.Add(1)
					go func(p partition) {
						defer wg.Done()
						for j := range p.pkts {
							if err := ing.Ingest(p.pkts[j], p.ats[j]); err != nil {
								errc <- err
								return
							}
						}
					}(p)
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					b.Fatal(err)
				}
				if err := ing.Close(); err != nil {
					b.Fatal(err)
				}
				if st := ing.Stats(); st.Processed == 0 {
					b.Fatal("nothing processed")
				}
			}
			b.ReportMetric(float64(total*b.N)/b.Elapsed().Seconds(), "pkts/sec")
			b.ReportMetric(float64(runtime.NumCPU()), "cores")
		})
	}
}

// BenchmarkFastpathLookup measures one armed-flow validation hit —
// the per-packet price the ingress lanes pay to absorb in-profile
// media instead of enqueueing it. This is the cost every absorbed RTP
// packet pays, so it sits in the hot-path suite with the parsers: its
// allocs/op is pinned at zero in BENCH_hotpath.json and any
// allocation is a gated regression.
func BenchmarkFastpathLookup(b *testing.B) {
	c := fastpath.New(fastpath.Config{
		Stripes: 8, SeqGap: 50, TSGap: 8000,
		RateWindow: time.Second, RatePackets: 1 << 30,
	})
	key := []byte("m|ua2.b.example.com|30000")
	c.Install(key, "bench-call", 0)
	v, f, epoch, _, _ := c.Lookup(key, 18, 42, 0, 0, 0)
	if v != fastpath.Miss || f == nil {
		b.Fatalf("priming lookup = %v, want Miss with flow", v)
	}
	if !c.Update(key, epoch, 18, fastpath.Snapshot{Gen: 1, SSRC: 42, WinCount: 1}) {
		b.Fatal("arm refused")
	}
	f.Release()
	b.ReportAllocs()
	b.ResetTimer()
	seq, ts := uint16(0), uint32(0)
	var res fastpath.Consult
	for i := 0; i < b.N; i++ {
		seq++
		ts += 160
		c.ConsultKey(key, 18, 42, seq, ts, time.Duration(i)*20*time.Millisecond, &res)
		if res.Verdict != fastpath.Hit {
			b.Fatalf("packet %d: verdict %v, want Hit", i, res.Verdict)
		}
	}
}

// mediaPart splits one lane's synthetic trace by pipeline role:
// setup is the dialog establishment (INVITE/200/ACK) plus each media
// flow's first packet — everything a flow needs to reach the armed
// state; blast is the steady-state media stream (plus its RTCP); tail
// is the BYE and its 200. Indices into pkts/ats preserve arrival
// order within each class.
type mediaPart struct {
	setup []int
	blast []int
	tail  []int
	pkts  []*sim.Packet
	ats   []time.Duration
}

func splitMediaPart(entries []trace.Entry) mediaPart {
	p := mediaPart{
		pkts: make([]*sim.Packet, len(entries)),
		ats:  make([]time.Duration, len(entries)),
	}
	firstMedia := make(map[sim.Addr]bool)
	for i, en := range entries {
		p.pkts[i] = en.Packet()
		p.ats[i] = en.At()
		switch p.pkts[i].Proto {
		case sim.ProtoSIP:
			if bytes.HasPrefix(en.Data, []byte("BYE ")) ||
				bytes.Contains(en.Data, []byte("CSeq: 2 BYE")) {
				p.tail = append(p.tail, i)
			} else {
				p.setup = append(p.setup, i)
			}
		case sim.ProtoRTP:
			to := sim.Addr{Host: en.ToHost, Port: en.ToPort}
			if !firstMedia[to] {
				firstMedia[to] = true
				p.setup = append(p.setup, i)
			} else {
				p.blast = append(p.blast, i)
			}
		default:
			p.blast = append(p.blast, i)
		}
	}
	return p
}

// BenchmarkEngineThroughputMedia measures the pipeline on the paper's
// dominant traffic shape: ~91% RTP (30 media packets per direction
// per dialog against 5 signaling messages and one RTCP report).
// Sub-benchmarks toggle the ingress-side validation cache
// (internal/fastpath) against the full slow path and sweep shard
// counts; fastpath=off is the control that prices absorption, and
// shards=4/shards=1 under fastpath=on feeds the -scaling floor. Each
// iteration establishes the dialogs and arms the flows untimed — the
// steady state a long-lived call spends its life in — then times the
// media blast, the hangups and the drain.
func BenchmarkEngineThroughputMedia(b *testing.B) {
	const totalCalls = 96 // divisible by every lane count below
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fastpath=on", false}, {"fastpath=off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for _, shards := range []int{1, 4} {
				b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
					benchMediaThroughput(b, totalCalls, shards, mode.disable)
				})
			}
		})
	}
}

func benchMediaThroughput(b *testing.B, totalCalls, shards int, disable bool) {
	lanes := shards
	parts := make([]mediaPart, lanes)
	blastTotal := 0
	for i := range parts {
		entries := engine.Synthesize(engine.SynthConfig{
			Calls: totalCalls / lanes, RTPPerCall: 30,
			FirstCall: i * (totalCalls / lanes),
		})
		parts[i] = splitMediaPart(entries)
		blastTotal += len(parts[i].blast)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		ing := ingress.New(ingress.Config{
			Lanes:  lanes,
			Engine: engine.Config{Shards: shards, DisableFastpath: disable},
		})
		// Arming needs the shard worker caught up when the flow's first
		// packet is processed, so the setup feed is drain-paced: each
		// packet is fully accounted before the next goes in.
		fed := uint64(0)
		accounted := func() uint64 {
			st := ing.Stats()
			return st.Processed + st.Absorbed + st.Ignored + st.ParseErrors
		}
		for _, p := range parts {
			for _, j := range p.setup {
				if err := ing.Ingest(p.pkts[j], p.ats[j]); err != nil {
					b.Fatal(err)
				}
				fed++
				for accounted() < fed {
					runtime.Gosched()
				}
			}
		}
		// The timed region is the media blast alone: ingest plus full
		// drain, so the slow-path control pays for emptying its shard
		// queues, not just for enqueueing. Collect the setup's garbage
		// first — on small boxes the GC debt of dialog establishment
		// otherwise comes due mid-blast.
		runtime.GC()
		b.StartTimer()

		errc := make(chan error, lanes)
		var wg sync.WaitGroup
		for _, p := range parts {
			wg.Add(1)
			go func(p mediaPart) {
				defer wg.Done()
				for _, j := range p.blast {
					if err := ing.Ingest(p.pkts[j], p.ats[j]); err != nil {
						errc <- err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		close(errc)
		for err := range errc {
			b.Fatal(err)
		}
		fed += uint64(blastTotal)
		for accounted() < fed {
			runtime.Gosched()
		}
		b.StopTimer()

		for _, p := range parts {
			for _, j := range p.tail {
				if err := ing.Ingest(p.pkts[j], p.ats[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := ing.Close(); err != nil {
			b.Fatal(err)
		}
		st := ing.Stats()
		if st.Processed == 0 {
			b.Fatal("nothing processed")
		}
		if disable && st.FastpathHits != 0 {
			b.Fatalf("disabled cache absorbed packets: %+v", st)
		}
		if !disable && st.FastpathHits == 0 {
			b.Fatalf("cache never absorbed the media blast: %+v", st)
		}
		if alerts := ing.Alerts(); len(alerts) != 0 {
			b.Fatalf("benign media workload raised %d alerts, first %+v", len(alerts), alerts[0])
		}
	}
	b.ReportMetric(float64(blastTotal)*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
	b.ReportMetric(float64(runtime.NumCPU()), "cores")
}

// BenchmarkRTCPParse measures RTCP decoding.
func BenchmarkRTCPParse(b *testing.B) {
	p := &rtp.RTCP{Type: rtp.RTCPSenderReport, SSRC: 1, PacketCount: 100,
		Reports: []rtp.ReceptionReport{{SSRC: 2, HighestSeq: 500}}}
	raw, err := p.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rtp.ParseRTCP(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMOS measures the E-model computation.
func BenchmarkMOS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = media.MOS(time.Duration(i%200)*time.Millisecond, float64(i%10)/100)
	}
}

// BenchmarkPreventionExperiment runs experiment E9 (availability
// under flood, detection vs. prevention).
func BenchmarkPreventionExperiment(b *testing.B) {
	opts := benchOpts()
	opts.Duration = time.Minute
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := vids.Prevention(opts)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.AvailabilityPrevention() - res.AvailabilityDetectOnly()
	}
	b.ReportMetric(gain*100, "availability-gain-%")
}
