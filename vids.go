// Package vids is the public façade of this repository: a
// reproduction of "VoIP Intrusion Detection Through Interacting
// Protocol State Machines" (Sengar, Wijesekera, Wang, Jajodia,
// DSN 2006).
//
// The heart of the system is an intrusion detection engine that
// monitors VoIP calls with one communicating extended finite state
// machine (EFSM) system per call: a SIP machine tracking signaling
// and two RTP machines tracking the media directions, synchronized by
// δ messages over FIFO queues. Deviations from the protocol
// specification or transitions into annotated attack states raise
// alerts.
//
// Quick start:
//
//	s := vids.NewSimulator(1)
//	d := vids.New(s, vids.DefaultConfig())
//	d.OnAlert = func(a vids.Alert) { fmt.Println(a) }
//	// feed packets via d.Process, or place it inline on a simulated
//	// network with d.Transit().
//
// For a full testbed (the paper's Figure 7 topology with proxies,
// user agents, G.729 media and an attacker attachment point) use
// NewTestbed; for regenerating the paper's figures and tables use the
// Experiment runners (Fig8, Fig9, Fig10, CPUOverhead, Memory,
// Accuracy, Sensitivity, Ablation).
package vids

import (
	"vids/internal/bufpool"
	"vids/internal/engine"
	"vids/internal/experiments"
	"vids/internal/ids"
	"vids/internal/ingress"
	"vids/internal/sim"
	"vids/internal/workload"
)

// Core IDS types.
type (
	// IDS is the vids engine: packet classifier, event distributor,
	// call state fact base, attack scenarios and analysis engine.
	IDS = ids.IDS
	// Config parameterizes the detectors and the inline
	// processing-cost model.
	Config = ids.Config
	// Alert is one detection event.
	Alert = ids.Alert
	// AlertType classifies alerts by attack pattern.
	AlertType = ids.AlertType
	// CallMonitor is one fact-base entry: the communicating machines
	// of one monitored call.
	CallMonitor = ids.CallMonitor
	// RTPThresholds are the media-stream detector parameters.
	RTPThresholds = ids.RTPThresholds
	// Backend selects the EFSM execution backend (Config.Backend):
	// specgen-compiled dispatch tables or the interpreted reference
	// walker.
	Backend = ids.Backend
)

// EFSM execution backends. Compiled is the default (zero value); the
// interpreted reference backend remains available for differential
// testing and spec debugging.
const (
	BackendCompiled    = ids.BackendCompiled
	BackendInterpreted = ids.BackendInterpreted
)

// Alert types (see the paper's Sections 3 and 6).
const (
	AlertInviteFlood    = ids.AlertInviteFlood
	AlertByeDoS         = ids.AlertByeDoS
	AlertTollFraud      = ids.AlertTollFraud
	AlertMediaSpam      = ids.AlertMediaSpam
	AlertCodecViolation = ids.AlertCodecViolation
	AlertRTPFlood       = ids.AlertRTPFlood
	AlertCallHijack     = ids.AlertCallHijack
	AlertSpoofedBye     = ids.AlertSpoofedBye
	AlertSpoofedCancel  = ids.AlertSpoofedCancel
	AlertDeviation      = ids.AlertDeviation
	AlertUnsolicitedRTP = ids.AlertUnsolicitedRTP
	AlertDRDoS          = ids.AlertDRDoS
	AlertRogueRegister  = ids.AlertRogueRegister
	AlertRTCPBye        = ids.AlertRTCPBye
)

// New creates a vids instance bound to a simulator clock.
func New(s *Simulator, cfg Config) *IDS { return ids.New(s, cfg) }

// DefaultConfig returns the calibrated detector defaults.
func DefaultConfig() Config { return ids.DefaultConfig() }

// Simulation types.
type (
	// Simulator is the deterministic discrete-event clock.
	Simulator = sim.Simulator
	// Network is the simulated topology.
	Network = sim.Network
	// Packet is a datagram in flight.
	Packet = sim.Packet
	// Addr is a host:port endpoint.
	Addr = sim.Addr
)

// Protocol labels for Packet.Proto.
const (
	ProtoSIP  = sim.ProtoSIP
	ProtoRTP  = sim.ProtoRTP
	ProtoRTCP = sim.ProtoRTCP
)

// Online engine types (internal/engine): the concurrent sharded
// detection pipeline that runs vids against live or replayed traffic.
type (
	// Engine is the online pipeline: N shard workers, each owning the
	// per-call machines of the calls hashed to it.
	Engine = engine.Engine
	// EngineConfig parameterizes shards, queues and backpressure.
	EngineConfig = engine.Config
	// EngineStats is a point-in-time pipeline snapshot.
	EngineStats = engine.Stats
	// QueuePolicy selects the full-queue behavior.
	QueuePolicy = engine.Policy
	// PacketSource feeds an engine (trace replay, UDP listener).
	PacketSource = engine.Source
	// PacketSink accepts timestamped packets (Engine and Ingress both
	// implement it, so sources can feed either tier).
	PacketSink = engine.Sink
	// TraceSource replays a captured trace file, optionally paced.
	TraceSource = engine.TraceSource
	// UDPSource ingests live traffic from real UDP sockets.
	UDPSource = engine.UDPSource
)

// Queue policies.
const (
	// QueueBlock makes ingestion wait for space (lossless).
	QueueBlock = engine.Block
	// QueueDropOldest evicts the oldest queued packet (live capture).
	QueueDropOldest = engine.DropOldest
	// QueueShed drops media before signaling under overload (tiered
	// live-capture degradation).
	QueueShed = engine.Shed
)

// Ingestion-tier types (internal/ingress): the multi-lane front end
// that moves parsing onto the shard workers and flood accounting onto
// lock-striped lanes, with pooled receive buffers.
type (
	// Ingress is the multi-lane ingestion tier wrapping an Engine.
	Ingress = ingress.Ingress
	// IngressConfig parameterizes lanes, buffers and the wrapped engine.
	IngressConfig = ingress.Config
	// UDPListeners binds SO_REUSEPORT socket pairs feeding an Ingress.
	UDPListeners = ingress.UDPListeners
	// BufferPool is the fixed-size receive-buffer free list.
	BufferPool = bufpool.Pool
)

// NewIngress builds the multi-lane ingestion tier. Close it to drain
// the lanes and the wrapped engine.
func NewIngress(cfg IngressConfig) *Ingress { return ingress.New(cfg) }

// NewBufferPool creates a receive-buffer free list (size <= 0 picks
// the default 64 KiB datagram capacity).
func NewBufferPool(size int) *BufferPool { return bufpool.New(size) }

// NewEngine starts the online sharded detection pipeline. Close it to
// drain the shard queues and merge the alert logs.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// NewSimulator creates a seeded virtual clock.
func NewSimulator(seed int64) *Simulator { return sim.New(seed) }

// NewNetwork creates an empty topology on a simulator.
func NewNetwork(s *Simulator) *Network { return sim.NewNetwork(s) }

// Testbed types (the paper's Figure 7 deployment).
type (
	// Testbed is the two-enterprise evaluation network.
	Testbed = workload.Testbed
	// TestbedConfig parameterizes the testbed and calling pattern.
	TestbedConfig = workload.Config
	// CallRecord captures one generated call's lifecycle.
	CallRecord = workload.CallRecord
)

// NewTestbed builds the Figure 7 topology.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return workload.New(cfg) }

// DefaultTestbedConfig mirrors the paper's testbed parameters.
func DefaultTestbedConfig() TestbedConfig { return workload.DefaultConfig() }

// Experiment runners (Section 7). Each regenerates one figure or
// table of the paper's evaluation.
type (
	// ExperimentOptions scales the experiment runs.
	ExperimentOptions = experiments.Options
	// Fig8Result holds the call arrival/duration workload data.
	Fig8Result = experiments.Fig8Result
	// Fig9Result holds the call-setup-delay comparison.
	Fig9Result = experiments.Fig9Result
	// Fig10Result holds the RTP QoS comparison.
	Fig10Result = experiments.Fig10Result
	// CPUResult holds the vids CPU-overhead measurement.
	CPUResult = experiments.CPUResult
	// MemoryResult holds the per-call memory accounting.
	MemoryResult = experiments.MemoryResult
	// AccuracyResult holds the detection-accuracy table.
	AccuracyResult = experiments.AccuracyResult
	// SensitivityResult holds the timer-sweep tables.
	SensitivityResult = experiments.SensitivityResult
	// AblationResult holds the cross-protocol ablation outcome.
	AblationResult = experiments.AblationResult
	// AuthResult holds the authentication-sufficiency experiment.
	AuthResult = experiments.AuthResult
	// PreventionResult holds the detection-vs-prevention availability
	// experiment.
	PreventionResult = experiments.PreventionResult
	// EngineScalingResult holds the online-engine scaling measurement.
	EngineScalingResult = experiments.EngineResult
	// BackendsResult holds the compiled-vs-interpreted dispatch
	// comparison.
	BackendsResult = experiments.BackendsResult
)

// Fig8 regenerates Figure 8 (call arrivals and durations).
func Fig8(o ExperimentOptions) (*Fig8Result, error) { return experiments.Fig8(o) }

// Fig9 regenerates Figure 9 (call setup delay with vs. without vids).
func Fig9(o ExperimentOptions) (*Fig9Result, error) { return experiments.Fig9(o) }

// Fig10 regenerates Figure 10 (RTP delay and jitter impact).
func Fig10(o ExperimentOptions) (*Fig10Result, error) { return experiments.Fig10(o) }

// CPUOverhead regenerates the Section 7.3 CPU measurement.
func CPUOverhead(o ExperimentOptions) (*CPUResult, error) { return experiments.CPUOverhead(o) }

// Memory regenerates the Section 7.3 per-call memory accounting.
func Memory(o ExperimentOptions) (*MemoryResult, error) { return experiments.Memory(o) }

// Accuracy regenerates the Section 7.5 detection-accuracy evaluation.
func Accuracy(o ExperimentOptions) (*AccuracyResult, error) { return experiments.Accuracy(o) }

// Sensitivity regenerates the Section 7.5 timer-sensitivity sweeps.
func Sensitivity(o ExperimentOptions) (*SensitivityResult, error) {
	return experiments.Sensitivity(o)
}

// Ablation runs experiment A1: the spoofed BYE DoS with and without
// the cross-protocol synchronization channel.
func Ablation(o ExperimentOptions) (*AblationResult, error) { return experiments.Ablation(o) }

// Auth runs experiment E8: shared-secret authentication stops
// outsider spoofing but not authenticated misbehaving endpoints
// (paper Section 3.1) — vids remains necessary.
func Auth(o ExperimentOptions) (*AuthResult, error) { return experiments.Auth(o) }

// Prevention runs experiment E9: victim availability under an INVITE
// flood, detection-only vs. inline prevention (the paper's cited
// "future of VoIP security").
func Prevention(o ExperimentOptions) (*PreventionResult, error) {
	return experiments.Prevention(o)
}

// EngineScaling runs experiment E10: the online sharded engine's
// throughput at 1 vs. NumCPU shards, with alert-stream parity checked.
func EngineScaling(o ExperimentOptions) (*EngineScalingResult, error) {
	return experiments.EngineScaling(o)
}

// Backends runs experiment E12: the specgen-compiled EFSM dispatch
// against the interpreted reference walker on one synthesized
// workload, swept across engine shard counts with alert-stream parity
// checked in every cell.
func Backends(o ExperimentOptions) (*BackendsResult, error) {
	return experiments.Backends(o)
}
